// Test-case generation facade: CFG build → (optional) code summary →
// DFS test-case template generation, with the statistics the paper's
// evaluation reports (time, SMT calls, path counts).
#pragma once

#include <memory>

#include "analysis/validate.hpp"
#include "cfg/build.hpp"
#include "summary/summary.hpp"
#include "sym/template.hpp"
#include "util/faultinject.hpp"
#include "util/supervise.hpp"

namespace meissa::driver {

struct GenOptions {
  // The paper's headline technique; off = the basic framework (§3.2).
  bool code_summary = true;
  cfg::BuildOptions build;
  summary::SummaryOptions summary;
  // Engine ablations (also used by the baseline reimplementations).
  bool early_termination = true;
  bool check_every_predicate = false;  // paper-faithful Algorithm 1 mode
  bool incremental = true;
  bool use_z3 = false;
  // Generation-time assumptions over in.* fields (LPI assumes).
  std::vector<ir::ExprRef> assumes;
  // Decide predicates statically ahead of the solver (summary pass and
  // final DFS). Solver-equivalent: the emitted templates are identical
  // with this on or off; only the SMT-call count changes.
  bool static_pruning = true;
  // Flag reads of invalid-header fields as diagnostics on each template
  // (exact only on unsummarized graphs; disabled automatically otherwise).
  bool detect_invalid_reads = true;
  uint64_t max_templates = 0;  // 0 = unlimited
  double time_budget_seconds = 0;  // 0 = unlimited (final DFS budget)
  // Worker threads for the summary pass and the final DFS (0 = hardware
  // concurrency). Any value yields the same templates: the exploration is
  // sharded deterministically and results merge in sequential DFS order.
  int threads = 0;
  // Per-check solver budget for the final DFS. Applies to the final DFS
  // only, never to the summary pass: a degraded check inside a summary
  // would silently change the summarized graph every later run depends on,
  // whereas a degraded final-DFS branch is visibly accounted (exact vs.
  // degraded coverage). Default = unlimited → output byte-identical.
  smt::Budget smt_budget;
  // Translation validation of the code-summary transform: after
  // summarize(), prove every eliminated path-fragment infeasible and the
  // surviving summary a simulation of the original. A refuted obligation
  // fails generation (util::ValidationError naming the pipeline and edge);
  // budget-exhausted obligations are reported as unproven in GenStats but
  // do not fail. Off by default: validation adds solver work and the
  // emitted templates are identical either way.
  bool validate_summary = false;
  // Per-obligation solver budget for the validation pass.
  smt::Budget validate_budget;
  // Solver-throughput layer for the final DFS (ROADMAP "solver
  // throughput"), both output-transparent — templates are byte-identical
  // on or off: the canonicalized path-condition verdict cache (auto-
  // disabled under a limited smt_budget; see EngineOptions::pc_cache) and
  // the adaptive fast-path-vs-bit-blasting portfolio keyed by CFG region.
  // On by default; off in the summary pass and baselines so ablations
  // measure raw solving.
  bool pc_cache = true;
  bool solver_portfolio = true;
  // Externally-owned verdict cache shared across Generator runs (the
  // incremental session warms it on the baseline and reuses it per
  // update). Forwarded to EngineOptions::shared_pc_cache — see the
  // precondition contract there. Must outlive generate().
  smt::PathCondCache* shared_pc_cache = nullptr;
  // Optional cooperative stop for the whole generation (polled by the DFS
  // workers). Must outlive generate().
  const util::CancelToken* cancel = nullptr;
  // Crash safety: non-empty = write versioned work-unit checkpoints into
  // this directory at summary wave boundaries and every `checkpoint_every`
  // emitted results per DFS shard. With `resume`, a valid checkpoint from
  // a prior (killed) run of the *same* program and options — content-key
  // guarded — is loaded first, and the run continues to templates byte-
  // identical to an uninterrupted run's.
  std::string checkpoint_dir;
  bool resume = false;
  uint64_t checkpoint_every = 8;
  // Shard supervision: when enabled, every DFS shard attempt runs under a
  // watchdog (per-shard heartbeats; stall/deadline trips cancel the
  // attempt). A tripped shard is re-queued once on a fresh context; a
  // second failure degrades it (counted, never silently dropped).
  util::SuperviseOptions supervise;
  // Runtime fault injection (tests/stress): consulted at shard starts and
  // checkpoint writes. Must outlive generate().
  util::FaultInjector* fault = nullptr;
};

struct GenStats {
  bool timed_out = false;
  // The GenOptions::cancel token fired and generation stopped early.
  bool cancelled = false;
  double build_seconds = 0;
  double summary_seconds = 0;
  double dfs_seconds = 0;
  double total_seconds = 0;
  uint64_t smt_checks = 0;  // summary + final DFS ("# of SMT calls")
  // Solver calls avoided by static pruning (summary + final DFS): branches
  // refuted and checks skipped without touching the solver.
  uint64_t smt_calls_skipped = 0;
  uint64_t templates = 0;
  uint64_t diagnostics = 0;  // invalid-header-read findings
  // Coverage split under solver budgets (final DFS): exact_paths are the
  // emitted templates, degraded_paths the branches a budgeted check could
  // not decide. exact + degraded = every branch the DFS tried to settle
  // and did not prove infeasible. smt_unknowns counts the kUnknown checks.
  uint64_t exact_paths = 0;
  uint64_t degraded_paths = 0;
  uint64_t smt_unknowns = 0;
  // Solver-throughput layer (final DFS): checks answered by the path-
  // condition cache vs. sent to a backend, sat verdicts confirmed by
  // re-evaluating a shard's last model, and checks the adaptive portfolio
  // routed straight to bit-blasting.
  uint64_t pc_cache_hits = 0;
  uint64_t pc_cache_misses = 0;
  uint64_t pc_model_reuse = 0;
  uint64_t fast_path_skipped = 0;
  // Summary translation validation (GenOptions::validate_summary).
  uint64_t validate_obligations = 0;
  uint64_t validate_unsat = 0;
  uint64_t validate_unproven = 0;
  uint64_t validate_refuted = 0;
  double validate_seconds = 0;
  // Crash safety & supervision (GenOptions::checkpoint_dir / supervise):
  // a valid checkpoint was loaded and this run resumed from it; pipelines
  // whose explore phase the checkpoint skipped; checkpoint persists that
  // succeeded / failed (failures never abort the run — it just keeps the
  // previous file). Shard-level requeue/degrade/resume counts live in
  // `engine` (EngineStats).
  bool resumed = false;
  uint64_t resumed_pipelines = 0;
  uint64_t checkpoint_writes = 0;
  uint64_t checkpoint_failures = 0;
  util::BigCount paths_original;    // possible paths, original CFG
  util::BigCount paths_summarized;  // possible paths after code summary
  std::vector<summary::PipelineSummary> pipelines;
  sym::EngineStats engine;

  // Accumulate another run's stats (benchmark aggregation across apps).
  GenStats& operator+=(const GenStats& o) {
    timed_out = timed_out || o.timed_out;
    cancelled = cancelled || o.cancelled;
    build_seconds += o.build_seconds;
    summary_seconds += o.summary_seconds;
    dfs_seconds += o.dfs_seconds;
    total_seconds += o.total_seconds;
    smt_checks += o.smt_checks;
    smt_calls_skipped += o.smt_calls_skipped;
    templates += o.templates;
    diagnostics += o.diagnostics;
    exact_paths += o.exact_paths;
    degraded_paths += o.degraded_paths;
    smt_unknowns += o.smt_unknowns;
    pc_cache_hits += o.pc_cache_hits;
    pc_cache_misses += o.pc_cache_misses;
    pc_model_reuse += o.pc_model_reuse;
    fast_path_skipped += o.fast_path_skipped;
    validate_obligations += o.validate_obligations;
    validate_unsat += o.validate_unsat;
    validate_unproven += o.validate_unproven;
    validate_refuted += o.validate_refuted;
    validate_seconds += o.validate_seconds;
    resumed = resumed || o.resumed;
    resumed_pipelines += o.resumed_pipelines;
    checkpoint_writes += o.checkpoint_writes;
    checkpoint_failures += o.checkpoint_failures;
    paths_original += o.paths_original;
    paths_summarized += o.paths_summarized;
    pipelines.insert(pipelines.end(), o.pipelines.begin(), o.pipelines.end());
    engine += o.engine;
    return *this;
  }
};

class Generator {
 public:
  Generator(ir::Context& ctx, const p4::DataPlane& dp,
            const p4::RuleSet& rules, GenOptions opts = {});

  // Runs summary (once) + DFS and returns all templates.
  std::vector<sym::TestCaseTemplate> generate();

  const GenStats& stats() const { return stats_; }
  const cfg::Cfg& graph() const { return *active_; }          // DFS graph
  const cfg::Cfg& original_graph() const { return original_; }
  // Full validation result (GenOptions::validate_summary); nullptr when
  // validation did not run.
  const analysis::ValidationResult* validation() const {
    return validation_ ? &*validation_ : nullptr;
  }
  // The engine used for the final DFS; valid after generate(). Exposes
  // solve_for_model for the sender.
  sym::Engine& engine() { return *engine_; }

  const p4::DataPlane& dataplane() const { return dp_; }

 private:
  ir::Context& ctx_;
  const p4::DataPlane& dp_;
  GenOptions opts_;
  cfg::Cfg original_;
  std::optional<summary::SummaryResult> summarized_;
  std::optional<analysis::ValidationResult> validation_;
  const cfg::Cfg* active_ = nullptr;
  // Dataflow facts for the final-DFS graph; must outlive engine_.
  analysis::Facts facts_;
  std::unique_ptr<sym::Engine> engine_;
  GenStats stats_;
};

}  // namespace meissa::driver
