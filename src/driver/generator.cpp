#include "driver/generator.hpp"

#include <algorithm>
#include <chrono>

#include "analysis/dataflow.hpp"
#include "driver/checkpoint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spec/intent.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace meissa::driver {

namespace {
double secs_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

Generator::Generator(ir::Context& ctx, const p4::DataPlane& dp,
                     const p4::RuleSet& rules, GenOptions opts)
    : ctx_(ctx), dp_(dp), opts_(std::move(opts)) {
  auto t0 = std::chrono::steady_clock::now();
  {
    obs::Span span("build cfg", "gen");
    original_ = cfg::build_cfg(dp, rules, ctx, opts_.build);
    span.arg("nodes", original_.size());
  }
  stats_.build_seconds = secs_since(t0);
  stats_.paths_original = original_.count_paths();
  active_ = &original_;
}

std::vector<sym::TestCaseTemplate> Generator::generate() {
  const int threads = util::resolve_threads(opts_.threads);

  // Crash safety: checkpoint manager + the prior run's state, when asked
  // to resume. The content key guards against applying a checkpoint from
  // a different option set — load() simply finds nothing — while region
  // fingerprints filter stale work units when the *program* changed, so a
  // localized edit keeps the untouched regions' summaries.
  std::unique_ptr<CheckpointManager> ckpt;
  CheckpointData prior;
  bool have_prior = false;
  if (!opts_.checkpoint_dir.empty()) {
    const uint64_t key = checkpoint_content_key(ctx_, original_, opts_);
    ckpt = std::make_unique<CheckpointManager>(
        ctx_, opts_.checkpoint_dir, key, opts_.fault,
        analysis::fingerprint_regions(ctx_, original_));
    if (opts_.resume) {
      have_prior = ckpt->load(prior);
      stats_.resumed = have_prior;
      if (have_prior) obs::instant("checkpoint loaded", "gen");
    }
  }
  summary::SummaryHooks shooks;
  if (ckpt != nullptr) {
    shooks.on_unit = [&](size_t, const summary::SummaryUnit& u) {
      ckpt->add_unit(u);
    };
    if (have_prior) shooks.resume = &prior.units;
  }

  if (opts_.code_summary && !summarized_) {
    auto t0 = std::chrono::steady_clock::now();
    obs::Span span("summary", "gen");
    summary::SummaryOptions so = opts_.summary;
    so.use_z3 = opts_.use_z3;
    so.check_every_predicate = opts_.check_every_predicate;
    so.threads = threads;
    so.static_pruning = opts_.static_pruning;
    so.cancel = opts_.cancel;
    so.shared_pc_cache = opts_.shared_pc_cache;
    if (ckpt != nullptr) so.hooks = &shooks;
    summarized_ = summary::summarize(ctx_, original_, so);
    stats_.summary_seconds = secs_since(t0);
    stats_.resumed_pipelines = summarized_->resumed_pipelines;
    if (summarized_->cancelled) {
      // A partially summarized graph must never be explored; report the
      // cancel and stop before the DFS.
      stats_.cancelled = true;
      stats_.total_seconds = stats_.build_seconds + stats_.summary_seconds;
      summarized_.reset();  // a later generate() re-runs the summary
      return {};
    }
    stats_.pipelines = summarized_->per_pipeline;
    stats_.smt_checks += summarized_->total_smt_checks;
    stats_.smt_calls_skipped += summarized_->total_smt_skipped;
    active_ = &summarized_->graph;
    span.arg("pipelines", summarized_->per_pipeline.size());
    span.arg("smt_checks", summarized_->total_smt_checks);

    if (opts_.validate_summary) {
      auto tv = std::chrono::steady_clock::now();
      obs::Span vspan("validate summary", "gen");
      analysis::ValidateOptions vo;
      vo.use_z3 = opts_.use_z3;
      vo.budget = opts_.validate_budget;
      vo.summary = so;
      validation_ = analysis::validate_summary(ctx_, original_,
                                               summarized_->graph, vo);
      stats_.validate_seconds = secs_since(tv);
      stats_.validate_obligations = validation_->obligations;
      stats_.validate_unsat = validation_->unsat;
      stats_.validate_unproven = validation_->unproven;
      stats_.validate_refuted = validation_->refuted;
      stats_.smt_checks += validation_->smt_checks;
      vspan.arg("obligations", validation_->obligations);
      vspan.arg("refuted", validation_->refuted);
      if (const analysis::Obligation* o = validation_->first_refuted()) {
        throw util::ValidationError(util::format(
            "summary validation refuted [%s] in pipeline '%s' at edge "
            "%u->%u: %s",
            analysis::obligation_kind_name(o->kind), o->pipeline.c_str(),
            o->orig_from, o->orig_node, o->detail.c_str()));
      }
    }
  }
  stats_.paths_summarized = active_->count_paths();

  sym::EngineOptions eopts;
  eopts.early_termination = opts_.early_termination;
  eopts.check_every_predicate = opts_.check_every_predicate;
  eopts.incremental = opts_.incremental;
  eopts.use_z3 = opts_.use_z3;
  eopts.max_results = opts_.max_templates;
  eopts.time_budget_seconds = opts_.time_budget_seconds;
  eopts.fresh_ns = "dfs";
  eopts.static_pruning = opts_.static_pruning;
  eopts.budget = opts_.smt_budget;
  eopts.cancel = opts_.cancel;
  eopts.pc_cache = opts_.pc_cache;
  eopts.solver_portfolio = opts_.solver_portfolio;
  eopts.shared_pc_cache = opts_.shared_pc_cache;
  if (opts_.static_pruning && !opts_.check_every_predicate) {
    facts_ = analysis::compute_facts(ctx_, *active_, active_->entry());
    eopts.facts = &facts_;
  }
  engine_ = std::make_unique<sym::Engine>(ctx_, *active_, eopts);
  for (ir::ExprRef a : opts_.assumes) {
    engine_->add_precondition(spec::assume_to_precondition(a, ctx_));
  }

  auto t0 = std::chrono::steady_clock::now();
  obs::Span dfs_span("dfs", "gen");
  std::vector<sym::TestCaseTemplate> templates;
  const bool diagnose = opts_.detect_invalid_reads && !opts_.code_summary;

  // Supervision / checkpointing hooks for the sharded DFS. The supervisor
  // is per-run (its watchdog joins before run_parallel returns its merge).
  util::Supervisor supervisor(opts_.supervise);
  sym::ParallelHooks phooks;
  phooks.checkpoint_every = opts_.checkpoint_every;
  if (ckpt != nullptr) {
    phooks.on_shards = [&](size_t n) { ckpt->begin_shards(n); };
    phooks.progress = [&](size_t i, const sym::ShardProgress& p) {
      ckpt->update_shard(i, p);
    };
    if (have_prior && !prior.shards.empty()) phooks.resume = &prior.shards;
  }
  phooks.supervisor = opts_.supervise.enabled() ? &supervisor : nullptr;
  phooks.fault = opts_.fault;

  // Always the sharded exploration, whatever the thread count: threads=1
  // runs the same shards inline, so shard namespaces — and therefore the
  // emitted templates — are byte-identical across thread counts.
  engine_->run_parallel([&](const sym::PathResult& r) {
    sym::TestCaseTemplate t =
        sym::make_template(ctx_, *active_, r, templates.size());
    if (diagnose) {
      t.diagnostics = sym::find_invalid_header_reads(ctx_, *active_, t.path);
      stats_.diagnostics += t.diagnostics.size();
    }
    templates.push_back(std::move(t));
  }, threads, phooks);
  // Emission order is already sequential-DFS order; keep the contract
  // explicit (and robust to future sink changes).
  std::stable_sort(templates.begin(), templates.end(),
                   [](const sym::TestCaseTemplate& a,
                      const sym::TestCaseTemplate& b) { return a.id < b.id; });
  stats_.dfs_seconds = secs_since(t0);
  stats_.engine = engine_->stats();
  stats_.timed_out = engine_->stats().timed_out;
  stats_.cancelled = engine_->stats().cancelled;
  stats_.exact_paths = engine_->stats().valid_paths;
  stats_.degraded_paths = engine_->stats().degraded_paths;
  stats_.smt_unknowns = engine_->stats().solver.unknowns;
  stats_.pc_cache_hits = engine_->stats().pc_cache_hits;
  stats_.pc_cache_misses = engine_->stats().pc_cache_misses;
  stats_.pc_model_reuse = engine_->stats().pc_model_reuse;
  stats_.fast_path_skipped = engine_->stats().solver.fast_path_skipped;
  stats_.smt_checks += engine_->stats().solver.checks;
  stats_.smt_calls_skipped +=
      engine_->stats().static_prunes + engine_->stats().skipped_checks;
  stats_.templates = templates.size();
  if (ckpt != nullptr) {
    stats_.checkpoint_writes = ckpt->writes();
    stats_.checkpoint_failures = ckpt->failures();
  }
  stats_.total_seconds = stats_.build_seconds + stats_.summary_seconds +
                         stats_.validate_seconds + stats_.dfs_seconds;
  dfs_span.arg("templates", templates.size());
  dfs_span.arg("smt_checks", engine_->stats().solver.checks);
  if (obs::metrics_enabled()) {
    obs::metrics().counter("gen.templates").add(templates.size());
    obs::metrics().counter("gen.smt_checks").add(stats_.smt_checks);
    obs::metrics()
        .counter("gen.smt_calls_skipped")
        .add(stats_.smt_calls_skipped);
    obs::metrics().counter("gen.pc_cache_hits").add(stats_.pc_cache_hits);
    obs::metrics().counter("gen.pc_cache_misses").add(stats_.pc_cache_misses);
    if (ckpt != nullptr) {
      obs::metrics().counter("checkpoint.writes").add(stats_.checkpoint_writes);
      obs::metrics()
          .counter("checkpoint.failures")
          .add(stats_.checkpoint_failures);
    }
  }
  return templates;
}

}  // namespace meissa::driver
