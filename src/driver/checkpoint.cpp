#include "driver/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "driver/generator.hpp"
#include "util/error.hpp"

namespace meissa::driver {

namespace {

constexpr char kMagic[8] = {'M', '4', 'C', 'K', 'P', 'T', '0', '1'};
// v2: solver-throughput counters (SolverStats::fast_path_skipped,
// EngineStats::pc_cache_* / pc_model_reuse). A v1 checkpoint simply fails
// the version guard and the run starts fresh — never misparsed.
// v3: payload carries region fingerprints (graph/glue/per-region) and the
// content key covers options only — readers of v2 and earlier reject.
constexpr uint32_t kVersion = 3;

// --- primitive byte streams (little-endian) -------------------------------

struct ByteWriter {
  std::vector<uint8_t> bytes;

  void u8(uint8_t v) { bytes.push_back(v); }
  void u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(uint8_t(v >> (8 * i)));
  }
  void u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) bytes.push_back(uint8_t(v >> (8 * i)));
  }
  void i32(int32_t v) { u32(static_cast<uint32_t>(v)); }
  void f64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
};

struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  void need(size_t n) const {
    util::check(size_t(end - p) >= n, "checkpoint: truncated payload");
  }
  uint8_t u8() {
    need(1);
    return *p++;
  }
  uint32_t u32() {
    need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(*p++) << (8 * i);
    return v;
  }
  uint64_t u64() {
    need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(*p++) << (8 * i);
    return v;
  }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64() {
    uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(p), n);
    p += n;
    return s;
  }
};

// --- expressions ----------------------------------------------------------
// Recursive tag-based encoding; fields by name. Deserialization rebuilds
// through the arena make-functions — interning is idempotent and the
// original node was itself arena-made, so the round trip reproduces the
// exact (pointer-identical within one context) structure.

void put_expr(ByteWriter& w, const ir::FieldTable& fields, ir::ExprRef e) {
  w.u8(static_cast<uint8_t>(e->kind));
  switch (e->kind) {
    case ir::ExprKind::kConst:
      w.u64(e->value);
      w.i32(e->width);
      break;
    case ir::ExprKind::kField:
      w.str(fields.name(e->field));
      w.i32(e->width);
      break;
    case ir::ExprKind::kArith:
      w.u8(e->op);
      put_expr(w, fields, e->lhs);
      put_expr(w, fields, e->rhs);
      break;
    case ir::ExprKind::kBoolConst:
      w.u8(e->value != 0 ? 1 : 0);
      break;
    case ir::ExprKind::kCmp:
      w.u8(e->op);
      put_expr(w, fields, e->lhs);
      put_expr(w, fields, e->rhs);
      break;
    case ir::ExprKind::kBool:
      w.u8(e->op);
      put_expr(w, fields, e->lhs);
      put_expr(w, fields, e->rhs);
      break;
    case ir::ExprKind::kNot:
      put_expr(w, fields, e->lhs);
      break;
  }
}

ir::ExprRef get_expr(ByteReader& r, ir::Context& ctx) {
  const auto kind = static_cast<ir::ExprKind>(r.u8());
  switch (kind) {
    case ir::ExprKind::kConst: {
      uint64_t v = r.u64();
      int width = r.i32();
      return ctx.arena.constant(v, width);
    }
    case ir::ExprKind::kField: {
      std::string name = r.str();
      int width = r.i32();
      return ctx.arena.field(ctx.fields.intern(name, width), width);
    }
    case ir::ExprKind::kArith: {
      auto op = static_cast<ir::ArithOp>(r.u8());
      ir::ExprRef a = get_expr(r, ctx);
      ir::ExprRef b = get_expr(r, ctx);
      return ctx.arena.arith(op, a, b);
    }
    case ir::ExprKind::kBoolConst:
      return ctx.arena.bool_const(r.u8() != 0);
    case ir::ExprKind::kCmp: {
      auto op = static_cast<ir::CmpOp>(r.u8());
      ir::ExprRef a = get_expr(r, ctx);
      ir::ExprRef b = get_expr(r, ctx);
      return ctx.arena.cmp(op, a, b);
    }
    case ir::ExprKind::kBool: {
      auto op = static_cast<ir::BoolOp>(r.u8());
      ir::ExprRef a = get_expr(r, ctx);
      ir::ExprRef b = get_expr(r, ctx);
      return op == ir::BoolOp::kAnd ? ctx.arena.band(a, b)
                                    : ctx.arena.bor(a, b);
    }
    case ir::ExprKind::kNot:
      return ctx.arena.bnot(get_expr(r, ctx));
  }
  throw util::ValidationError("checkpoint: unknown expression tag");
}

// --- engine structures ----------------------------------------------------

void put_solver_stats(ByteWriter& w, const smt::SolverStats& s) {
  w.u64(s.checks);
  w.u64(s.fast_path_hits);
  w.u64(s.sat_calls);
  w.u64(s.fast_path_skipped);
  w.u64(s.unknowns);
  w.u64(s.pushes);
  w.u64(s.pops);
}

smt::SolverStats get_solver_stats(ByteReader& r) {
  smt::SolverStats s;
  s.checks = r.u64();
  s.fast_path_hits = r.u64();
  s.sat_calls = r.u64();
  s.fast_path_skipped = r.u64();
  s.unknowns = r.u64();
  s.pushes = r.u64();
  s.pops = r.u64();
  return s;
}

void put_engine_stats(ByteWriter& w, const sym::EngineStats& s) {
  w.u64(s.valid_paths);
  w.u64(s.pruned_paths);
  w.u64(s.folded_checks);
  w.u64(s.nodes_visited);
  w.u64(s.offtarget_paths);
  w.u64(s.static_prunes);
  w.u64(s.skipped_checks);
  w.u64(s.degraded_paths);
  w.u8(s.timed_out ? 1 : 0);
  w.u8(s.cancelled ? 1 : 0);
  w.u64(s.requeued_shards);
  w.u64(s.degraded_shards);
  w.u64(s.resumed_shards);
  w.u64(s.pc_cache_hits);
  w.u64(s.pc_cache_misses);
  w.u64(s.pc_model_reuse);
  put_solver_stats(w, s.solver);
}

sym::EngineStats get_engine_stats(ByteReader& r) {
  sym::EngineStats s;
  s.valid_paths = r.u64();
  s.pruned_paths = r.u64();
  s.folded_checks = r.u64();
  s.nodes_visited = r.u64();
  s.offtarget_paths = r.u64();
  s.static_prunes = r.u64();
  s.skipped_checks = r.u64();
  s.degraded_paths = r.u64();
  s.timed_out = r.u8() != 0;
  s.cancelled = r.u8() != 0;
  s.requeued_shards = r.u64();
  s.degraded_shards = r.u64();
  s.resumed_shards = r.u64();
  s.pc_cache_hits = r.u64();
  s.pc_cache_misses = r.u64();
  s.pc_model_reuse = r.u64();
  s.solver = get_solver_stats(r);
  return s;
}

void put_path_result(ByteWriter& w, const ir::Context& ctx,
                     const sym::PathResult& pr) {
  w.u64(pr.path.size());
  for (cfg::NodeId n : pr.path) w.u32(n);
  w.u64(pr.conds.size());
  for (ir::ExprRef c : pr.conds) put_expr(w, ctx.fields, c);
  // The value map sorted by field *name*: FieldId order is interning order,
  // which differs between the writing and the reading process.
  std::vector<std::pair<ir::FieldId, ir::ExprRef>> vals(pr.values.begin(),
                                                        pr.values.end());
  std::sort(vals.begin(), vals.end(),
            [&](const auto& a, const auto& b) {
              return ctx.fields.name(a.first) < ctx.fields.name(b.first);
            });
  w.u64(vals.size());
  for (const auto& [f, e] : vals) {
    w.str(ctx.fields.name(f));
    w.i32(ctx.fields.width(f));
    put_expr(w, ctx.fields, e);
  }
  w.u64(pr.obligations.size());
  for (const sym::HashObligation& o : pr.obligations) {
    w.str(ctx.fields.name(o.placeholder));
    w.i32(ctx.fields.width(o.placeholder));
    w.u8(static_cast<uint8_t>(o.algo));
    w.u64(o.key_exprs.size());
    for (ir::ExprRef k : o.key_exprs) put_expr(w, ctx.fields, k);
    w.u64(o.key_widths.size());
    for (int kw : o.key_widths) w.i32(kw);
  }
  w.u8(static_cast<uint8_t>(pr.exit));
  w.i32(pr.emit_instance);
}

sym::PathResult get_path_result(ByteReader& r, ir::Context& ctx) {
  sym::PathResult pr;
  pr.path.resize(r.u64());
  for (cfg::NodeId& n : pr.path) n = r.u32();
  pr.conds.resize(r.u64());
  for (ir::ExprRef& c : pr.conds) c = get_expr(r, ctx);
  uint64_t nvals = r.u64();
  for (uint64_t i = 0; i < nvals; ++i) {
    std::string name = r.str();
    int width = r.i32();
    ir::FieldId f = ctx.fields.intern(name, width);
    pr.values[f] = get_expr(r, ctx);
  }
  pr.obligations.resize(r.u64());
  for (sym::HashObligation& o : pr.obligations) {
    std::string name = r.str();
    int width = r.i32();
    o.placeholder = ctx.fields.intern(name, width);
    o.algo = static_cast<p4::HashAlgo>(r.u8());
    o.key_exprs.resize(r.u64());
    for (ir::ExprRef& k : o.key_exprs) k = get_expr(r, ctx);
    o.key_widths.resize(r.u64());
    for (int& kw : o.key_widths) kw = r.i32();
  }
  pr.exit = static_cast<cfg::ExitKind>(r.u8());
  pr.emit_instance = r.i32();
  return pr;
}

void put_shard(ByteWriter& w, const ir::Context& ctx,
               const sym::ShardProgress& s) {
  w.u8(s.done ? 1 : 0);
  w.u64(s.results.size());
  for (const sym::PathResult& pr : s.results) put_path_result(w, ctx, pr);
  w.u64(s.frontier.size());
  for (cfg::NodeId n : s.frontier) w.u32(n);
  w.u64(s.fresh_counter);
  put_engine_stats(w, s.stats);
}

sym::ShardProgress get_shard(ByteReader& r, ir::Context& ctx) {
  sym::ShardProgress s;
  s.done = r.u8() != 0;
  s.results.resize(r.u64());
  for (sym::PathResult& pr : s.results) pr = get_path_result(r, ctx);
  s.frontier.resize(r.u64());
  for (cfg::NodeId& n : s.frontier) n = r.u32();
  s.fresh_counter = r.u64();
  s.stats = get_engine_stats(r);
  return s;
}

void put_unit(ByteWriter& w, const ir::Context& ctx,
              const summary::SummaryUnit& u) {
  w.str(u.instance);
  w.u64(u.paths_after);
  w.u64(u.smt_checks);
  w.u64(u.smt_skipped);
  w.f64(u.seconds);
  w.u64(u.internal.size());
  for (const sym::PathResult& pr : u.internal) put_path_result(w, ctx, pr);
  w.u64(u.seed_snaps.size());
  for (const summary::SummaryUnit::SeedSnap& s : u.seed_snaps) {
    w.str(s.at);
    w.str(s.orig);
    w.i32(s.width);
  }
}

summary::SummaryUnit get_unit(ByteReader& r, ir::Context& ctx) {
  summary::SummaryUnit u;
  u.instance = r.str();
  u.paths_after = r.u64();
  u.smt_checks = r.u64();
  u.smt_skipped = r.u64();
  u.seconds = r.f64();
  u.internal.resize(r.u64());
  for (sym::PathResult& pr : u.internal) pr = get_path_result(r, ctx);
  u.seed_snaps.resize(r.u64());
  for (summary::SummaryUnit::SeedSnap& s : u.seed_snaps) {
    s.at = r.str();
    s.orig = r.str();
    s.width = r.i32();
  }
  return u;
}

// --- content-key helpers --------------------------------------------------

uint64_t key_str(uint64_t h, const std::string& s) {
  uint64_t n = s.size();
  h = fnv1a(h, &n, sizeof(n));
  return fnv1a(h, s.data(), s.size());
}

uint64_t key_u64(uint64_t h, uint64_t v) { return fnv1a(h, &v, sizeof(v)); }

// --- file I/O -------------------------------------------------------------

bool read_file(const std::string& path, std::vector<uint8_t>& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  uint8_t buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return true;
}

bool write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written =
      bytes.empty() ? 0 : std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size();
  ok = std::fflush(f) == 0 && ok;
  std::fclose(f);
  return ok;
}

}  // namespace

uint32_t crc32(const uint8_t* data, size_t n) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc ^= data[i];
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
    }
  }
  return ~crc;
}

std::vector<uint8_t> serialize_checkpoint(const ir::Context& ctx,
                                          const CheckpointData& data) {
  ByteWriter w;
  // Region fingerprints first: load() filters units against them before
  // anything else is interpreted.
  w.u64(data.graph_fp);
  w.u64(data.glue_fp);
  std::vector<std::pair<std::string, uint64_t>> fps(data.region_fps.begin(),
                                                    data.region_fps.end());
  std::sort(fps.begin(), fps.end());
  w.u64(fps.size());
  for (const auto& [name, fp] : fps) {
    w.str(name);
    w.u64(fp);
  }
  // Units in sorted instance order: the file bytes are a pure function of
  // the state, not of map iteration order.
  std::vector<const summary::SummaryUnit*> units;
  units.reserve(data.units.size());
  for (const auto& [name, u] : data.units) units.push_back(&u);
  std::sort(units.begin(), units.end(),
            [](const summary::SummaryUnit* a, const summary::SummaryUnit* b) {
              return a->instance < b->instance;
            });
  w.u64(units.size());
  for (const summary::SummaryUnit* u : units) put_unit(w, ctx, *u);
  w.u64(data.shards.size());
  for (const sym::ShardProgress& s : data.shards) put_shard(w, ctx, s);
  return std::move(w.bytes);
}

CheckpointData deserialize_checkpoint(ir::Context& ctx,
                                      const std::vector<uint8_t>& payload) {
  ByteReader r{payload.data(), payload.data() + payload.size()};
  CheckpointData data;
  data.graph_fp = r.u64();
  data.glue_fp = r.u64();
  uint64_t nfps = r.u64();
  for (uint64_t i = 0; i < nfps; ++i) {
    std::string name = r.str();
    uint64_t fp = r.u64();
    data.region_fps.emplace(std::move(name), fp);
  }
  uint64_t nunits = r.u64();
  for (uint64_t i = 0; i < nunits; ++i) {
    summary::SummaryUnit u = get_unit(r, ctx);
    std::string name = u.instance;
    data.units.emplace(std::move(name), std::move(u));
  }
  data.shards.resize(r.u64());
  for (sym::ShardProgress& s : data.shards) s = get_shard(r, ctx);
  util::check(r.p == r.end, "checkpoint: trailing bytes in payload");
  return data;
}

std::vector<uint8_t> encode_checkpoint_file(const ir::Context& ctx,
                                            uint64_t content_key,
                                            const CheckpointData& data) {
  std::vector<uint8_t> payload = serialize_checkpoint(ctx, data);
  ByteWriter w;
  w.bytes.insert(w.bytes.end(), kMagic, kMagic + sizeof(kMagic));
  w.u32(kVersion);
  w.u64(content_key);
  w.u64(payload.size());
  w.u32(crc32(payload.data(), payload.size()));
  w.bytes.insert(w.bytes.end(), payload.begin(), payload.end());
  return std::move(w.bytes);
}

std::optional<CheckpointData> decode_checkpoint_file(
    ir::Context& ctx, uint64_t content_key,
    const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeader = sizeof(kMagic) + 4 + 8 + 8 + 4;
  if (bytes.size() < kHeader) return std::nullopt;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  ByteReader r{bytes.data() + sizeof(kMagic), bytes.data() + bytes.size()};
  if (r.u32() != kVersion) return std::nullopt;
  if (r.u64() != content_key) return std::nullopt;
  uint64_t payload_len = r.u64();
  uint32_t crc = r.u32();
  if (uint64_t(r.end - r.p) != payload_len) return std::nullopt;
  if (crc32(r.p, payload_len) != crc) return std::nullopt;
  std::vector<uint8_t> payload(r.p, r.end);
  try {
    return deserialize_checkpoint(ctx, payload);
  } catch (const util::Error&) {
    // CRC passed but the payload is structurally invalid (version-skewed
    // writer): treat like corruption and let the caller fall back.
    return std::nullopt;
  }
}

uint64_t checkpoint_content_key(const ir::Context& ctx, const cfg::Cfg& g,
                                const GenOptions& opts) {
  uint64_t h = kFnvOffset;
  // The instance inventory only — program *content* lives in the payload's
  // per-region fingerprints (analysis::fingerprint_regions), so an edited
  // region degrades the checkpoint instead of discarding it. The whole-CFG
  // hash that used to live here moved verbatim to
  // analysis::fingerprint_graph and now gates just the shard frontiers.
  h = key_u64(h, g.instances().size());
  for (const cfg::InstanceInfo& info : g.instances()) {
    h = key_str(h, info.name);
    h = key_str(h, info.pipeline);
  }
  // Output-affecting options. Thread count, static pruning, cadence and
  // supervision are excluded: solver-equivalent or schedule-only.
  h = key_u64(h, opts.code_summary ? 1 : 0);
  h = key_u64(h, opts.early_termination ? 1 : 0);
  h = key_u64(h, opts.check_every_predicate ? 1 : 0);
  h = key_u64(h, opts.incremental ? 1 : 0);
  h = key_u64(h, opts.use_z3 ? 1 : 0);
  h = key_u64(h, opts.max_templates);
  h = key_u64(h, opts.smt_budget.max_conflicts);
  h = key_u64(h, opts.smt_budget.max_propagations);
  h = key_u64(h, opts.smt_budget.max_wall_ms);
  h = key_u64(h, opts.summary.precondition_filtering ? 1 : 0);
  h = key_u64(h, static_cast<uint64_t>(opts.summary.precondition_mode));
  h = key_u64(h, opts.summary.max_precondition_paths);
  h = key_u64(h, opts.assumes.size());
  for (ir::ExprRef a : opts.assumes) {
    h = key_str(h, ir::to_string(a, ctx.fields));
  }
  return h;
}

CheckpointManager::CheckpointManager(ir::Context& ctx, std::string dir,
                                     uint64_t content_key,
                                     util::FaultInjector* fault,
                                     analysis::RegionFingerprints fps)
    : ctx_(ctx),
      dir_(std::move(dir)),
      path_(dir_ + "/checkpoint.bin"),
      key_(content_key),
      fault_(fault),
      fps_(std::move(fps)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort; write fails
  stamp_fps_locked();
}

void CheckpointManager::stamp_fps_locked() {
  data_.graph_fp = fps_.whole;
  data_.glue_fp = fps_.glue;
  data_.region_fps.clear();
  for (const auto& [name, fp] : fps_.region) data_.region_fps.emplace(name, fp);
}

bool CheckpointManager::load(CheckpointData& out) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> bytes;
  for (const std::string& candidate : {path_, path_ + ".prev"}) {
    if (!read_file(candidate, bytes)) continue;
    std::optional<CheckpointData> data =
        decode_checkpoint_file(ctx_, key_, bytes);
    if (!data.has_value()) continue;
    if (!fps_.empty()) {
      // Per-region filtering: a summary unit is reusable only if its own
      // region, every upstream region (its public pre-condition depends on
      // them), and the inter-pipeline glue are byte-for-byte the program
      // the unit was computed for. Shard frontiers embed absolute node
      // ids, so they additionally require an identical whole-graph hash.
      auto region_matches = [&](const std::string& name) {
        auto cur = fps_.region.find(name);
        auto old = data->region_fps.find(name);
        return cur != fps_.region.end() && old != data->region_fps.end() &&
               cur->second == old->second;
      };
      auto unit_reusable = [&](const std::string& name) {
        if (data->glue_fp != fps_.glue || !region_matches(name)) return false;
        auto ups = fps_.upstream.find(name);
        if (ups == fps_.upstream.end()) return false;
        for (const std::string& u : ups->second) {
          if (!region_matches(u)) return false;
        }
        return true;
      };
      for (auto it = data->units.begin(); it != data->units.end();) {
        it = unit_reusable(it->first) ? std::next(it) : data->units.erase(it);
      }
      if (data->graph_fp != fps_.whole) data->shards.clear();
      if (data->units.empty() && data->shards.empty()) continue;
    }
    out = std::move(*data);
    data_ = out;
    // Subsequent persists describe the CURRENT program, not the loaded one.
    stamp_fps_locked();
    return true;
  }
  return false;
}

void CheckpointManager::add_unit(const summary::SummaryUnit& u) {
  std::lock_guard<std::mutex> lock(mu_);
  data_.units[u.instance] = u;
  persist_locked();
}

void CheckpointManager::begin_shards(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  // A fresh DFS phase: prior shard progress (from the loaded checkpoint)
  // has been handed to the engine as resume input; the table restarts and
  // is repopulated by the engine's progress snapshots (resumed-done shards
  // re-fire theirs immediately).
  data_.shards.assign(n, sym::ShardProgress{});
  persist_locked();
}

void CheckpointManager::update_shard(size_t i, const sym::ShardProgress& p) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i >= data_.shards.size()) data_.shards.resize(i + 1);
  data_.shards[i] = p;
  persist_locked();
}

uint64_t CheckpointManager::writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return writes_;
}

uint64_t CheckpointManager::failures() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failures_;
}

void CheckpointManager::persist_locked() {
  // A failing checkpoint must never fail the generation it protects:
  // every failure mode — allocation, injected fault, filesystem — lands
  // in the failure counter and the run continues on the previous file.
  try {
    if (fault_ != nullptr) fault_->hit("checkpoint.serialize");
    std::vector<uint8_t> bytes = encode_checkpoint_file(ctx_, key_, data_);
    if (fault_ != nullptr) fault_->mutate("checkpoint.write", bytes);
    const std::string tmp = path_ + ".tmp";
    if (!write_file(tmp, bytes)) {
      ++failures_;
      return;
    }
    // Rotate: current → .prev (keeps one known-good fallback), tmp →
    // current (atomic on POSIX). A crash between the renames leaves a
    // loadable .prev.
    std::error_code ec;
    std::filesystem::rename(path_, path_ + ".prev", ec);  // ok to miss
    std::filesystem::rename(tmp, path_, ec);
    if (ec) {
      ++failures_;
      return;
    }
    ++writes_;
  } catch (...) {
    ++failures_;
  }
}

}  // namespace meissa::driver
