#include "driver/tester.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace meissa::driver {

Meissa::Meissa(ir::Context& ctx, const p4::DataPlane& dp,
               const p4::RuleSet& rules, TestRunOptions opts)
    : ctx_(ctx), dp_(dp), opts_(std::move(opts)), gen_(ctx, dp, rules,
                                                      opts_.gen) {}

std::vector<sym::TestCaseTemplate> Meissa::generate() {
  if (!generated_) {
    templates_ = gen_.generate();
    generated_ = true;
  }
  return templates_;
}

TestReport Meissa::test(sim::Device& device,
                        const std::vector<spec::Intent>& intents,
                        const util::CancelToken* cancel) {
  generate();
  TestReport report;
  report.templates = templates_.size();

  Sender sender(ctx_, dp_, gen_.graph(), opts_.seed);

  // Checks one settled verdict and folds it into the report.
  auto record = [&](const sym::TestCaseTemplate& t, const TestCase& tc,
                    const sim::DeviceOutput& out) {
    CheckResult cr = check_case(ctx_, dp_.program, tc, out, intents);
    ++report.cases;
    if (cr.pass) {
      ++report.passed;
      return;
    }
    ++report.failed;
    if (report.failures.size() < opts_.max_recorded_failures) {
      CaseRecord rec;
      rec.template_id = tc.template_id;
      rec.case_id = tc.case_id;
      rec.pass = false;
      rec.model_problems = std::move(cr.model_problems);
      rec.intent_problems = std::move(cr.intent_problems);
      if (opts_.collect_traces) {
        rec.symbolic_trace =
            symbolic_trace(ctx_, gen_.graph(), t.path, tc.input_state, 200);
        rec.physical_trace = device.render_trace(out.trace);
      }
      report.failures.push_back(std::move(rec));
    }
  };

  if (opts_.link.none()) {
    // Perfect link: batched submission through one recycled arena.
    // Register installs merge into persistent device state, so a pending
    // batch flushes before every install — each case then executes after
    // exactly the installs that preceded it serially, which keeps verdicts
    // byte-identical to the old one-install-one-inject loop.
    sim::ExecArena arena;
    arena.collect_trace = opts_.collect_traces;
    const size_t batch = std::max<size_t>(1, opts_.batch);
    std::vector<const sym::TestCaseTemplate*> pend_t;
    std::vector<TestCase> pend_c;
    std::vector<sim::DeviceInput> inputs;
    std::vector<sim::DeviceOutput> outputs;

    auto flush = [&] {
      if (pend_c.empty()) return;
      inputs.clear();
      for (TestCase& tc : pend_c) inputs.push_back(std::move(tc.input));
      outputs.resize(pend_c.size());
      device.run_batch(inputs, outputs, arena);
      for (size_t i = 0; i < pend_c.size(); ++i) {
        obs::Span span("send/check", "driver");
        span.arg("case", pend_c[i].case_id);
        pend_c[i].input = std::move(inputs[i]);  // checker reads the input
        record(*pend_t[i], pend_c[i], outputs[i]);
      }
      pend_t.clear();
      pend_c.clear();
    };

    for (const sym::TestCaseTemplate& t : templates_) {
      if (cancel != nullptr && cancel->cancelled()) {
        report.cancelled = true;
        break;
      }
      std::optional<TestCase> tc = sender.concretize(t, gen_.engine());
      if (!tc) continue;  // removed by hash filtering (§4)
      if (!tc->registers.empty()) {
        flush();
        device.set_registers(tc->registers);
      }
      pend_t.push_back(&t);
      pend_c.push_back(std::move(*tc));
      if (pend_c.size() >= batch) flush();
    }
    flush();
  } else {
    // Flaky link: per-case install+send with capped-backoff retry, stamp-
    // based dedup and corruption detection, quarantine on exhaustion.
    sim::FlakyLink link(device, opts_.link);
    std::unordered_set<uint64_t> settled;

    for (const sym::TestCaseTemplate& t : templates_) {
      if (cancel != nullptr && cancel->cancelled()) {
        report.cancelled = true;
        break;
      }
      std::optional<TestCase> tc = sender.concretize(t, gen_.engine());
      if (!tc) continue;
      obs::Span span("send/check", "driver");
      span.arg("case", tc->case_id);
      // Drain reordered stragglers of earlier cases first: afterwards only
      // this case's frames are in flight, which is what makes unstamped
      // drop verdicts attributable to it. Two collects empty the link's
      // two-stage reorder pipeline completely.
      for (int d = 0; d < 2; ++d) {
        for (const sim::DeviceOutput& stale : link.collect()) {
          (void)stale;
          ++report.dedup_dropped;
        }
      }

      std::optional<sim::DeviceOutput> verdict;
      for (int attempt = 0; attempt <= opts_.max_send_retries; ++attempt) {
        if (attempt > 0) {
          ++report.send_retries;
          // Capped exponential backoff with *equal jitter*, accounted in
          // simulated units: each retry waits between half and the full
          // exponential step, so concurrent retriers decorrelate without
          // ever collapsing to zero wait. The jitter is drawn from a
          // (seed, case, attempt)-keyed stream — a pure function of the
          // run's inputs, so the accounted units are byte-identical per
          // seed, independent of wall-clock or scheduling.
          int e = std::min(attempt - 1, opts_.max_backoff_exponent);
          const uint64_t base = uint64_t{1} << e;
          util::Rng jitter(opts_.seed ^
                           (tc->case_id * 0x9E3779B97F4A7C15ull) ^
                           static_cast<uint64_t>(attempt));
          report.backoff_units += (base + 1) / 2 + jitter.below(base / 2 + 1);
        }
        // (Re-)install registers before every send: installs can fail
        // transiently, and a resend must observe pristine register state.
        bool installed = false;
        for (int i = 0; i <= opts_.max_install_retries; ++i) {
          if (i > 0) ++report.install_retries;
          if (link.install_registers(tc->registers)) {
            installed = true;
            break;
          }
        }
        if (!installed) break;  // quarantined below

        link.send(tc->input);
        for (sim::DeviceOutput& out : link.collect()) {
          if (verdict) {
            ++report.dedup_dropped;  // duplicate of a settled verdict
            continue;
          }
          if (out.dropped || !out.accepted) {
            // Drop verdicts carry no stamp; the drain above guarantees
            // they belong to the case in flight.
            verdict = std::move(out);
            continue;
          }
          switch (classify_frame(out.bytes, tc->case_id, settled)) {
            case FrameClass::kOurs:
              verdict = std::move(out);
              break;
            case FrameClass::kStale:
              ++report.dedup_dropped;
              break;
            case FrameClass::kCorrupt:
              ++report.corruption_detected;
              break;
          }
        }
        if (verdict) break;
      }

      settled.insert(tc->case_id);
      if (!verdict) {
        ++report.cases;
        report.quarantined.push_back(tc->case_id);
        obs::instant("case quarantined", "driver");
        continue;
      }
      record(t, *tc, *verdict);
    }
    report.link = link.stats();
  }

  report.removed_by_hash = sender.removed_by_hash();
  report.hash_repair_attempts = sender.hash_repair_attempts();
  report.gen = gen_.stats();
  if (obs::metrics_enabled()) {
    // Retry-protocol totals (run-level, emitted once: cheaper and just as
    // informative as per-event counting on the serial driver loop).
    obs::metrics().counter("driver.cases").add(report.cases);
    obs::metrics().counter("driver.failed").add(report.failed);
    obs::metrics().counter("driver.send_retries").add(report.send_retries);
    obs::metrics()
        .counter("driver.install_retries")
        .add(report.install_retries);
    obs::metrics().counter("driver.dedup_dropped").add(report.dedup_dropped);
    obs::metrics()
        .counter("driver.corruption_detected")
        .add(report.corruption_detected);
    obs::metrics().counter("driver.backoff_units").add(report.backoff_units);
    obs::metrics()
        .counter("driver.quarantined")
        .add(report.quarantined.size());
    obs::metrics()
        .counter("driver.hash_repair_attempts")
        .add(report.hash_repair_attempts);
  }
  return report;
}

}  // namespace meissa::driver
