#include "driver/tester.hpp"

namespace meissa::driver {

Meissa::Meissa(ir::Context& ctx, const p4::DataPlane& dp,
               const p4::RuleSet& rules, TestRunOptions opts)
    : ctx_(ctx), dp_(dp), opts_(std::move(opts)), gen_(ctx, dp, rules,
                                                      opts_.gen) {}

std::vector<sym::TestCaseTemplate> Meissa::generate() {
  if (!generated_) {
    templates_ = gen_.generate();
    generated_ = true;
  }
  return templates_;
}

TestReport Meissa::test(sim::Device& device,
                        const std::vector<spec::Intent>& intents) {
  generate();
  TestReport report;
  report.templates = templates_.size();

  Sender sender(ctx_, dp_, gen_.graph(), opts_.seed);
  for (const sym::TestCaseTemplate& t : templates_) {
    std::optional<TestCase> tc = sender.concretize(t, gen_.engine());
    if (!tc) continue;  // removed by hash filtering (§4)
    device.set_registers(tc->registers);
    sim::DeviceOutput out = device.inject(tc->input);
    CheckResult cr = check_case(ctx_, dp_.program, *tc, out, intents);
    ++report.cases;
    if (cr.pass) {
      ++report.passed;
      continue;
    }
    ++report.failed;
    if (report.failures.size() < opts_.max_recorded_failures) {
      CaseRecord rec;
      rec.template_id = tc->template_id;
      rec.case_id = tc->case_id;
      rec.pass = false;
      rec.model_problems = std::move(cr.model_problems);
      rec.intent_problems = std::move(cr.intent_problems);
      if (opts_.collect_traces) {
        rec.symbolic_trace =
            symbolic_trace(ctx_, gen_.graph(), t.path, tc->input_state, 200);
        rec.physical_trace = out.trace;
      }
      report.failures.push_back(std::move(rec));
    }
  }
  report.removed_by_hash = sender.removed_by_hash();
  report.gen = gen_.stats();
  return report;
}

}  // namespace meissa::driver
