#include "driver/checker.hpp"

#include "util/strings.hpp"

namespace meissa::driver {

CheckResult check_case(ir::Context& ctx, const p4::Program& prog,
                       const TestCase& tc, const sim::DeviceOutput& out,
                       const std::vector<spec::Intent>& intents) {
  CheckResult r;

  if (!out.accepted) {
    r.pass = false;
    r.model_problems.push_back("device rejected the packet at ingress");
    return r;
  }

  // --- model comparison ----------------------------------------------------
  std::optional<packet::Packet> actual;
  if (tc.expect_drop) {
    if (!out.dropped) {
      r.pass = false;
      r.model_problems.push_back(
          "expected drop, but a packet was emitted on port " +
          std::to_string(out.port));
    }
  } else if (out.dropped) {
    r.pass = false;
    r.model_problems.push_back("expected emission on port " +
                               std::to_string(tc.expect_port) +
                               ", but the packet was dropped (absent)");
  } else {
    if (out.port != tc.expect_port) {
      r.pass = false;
      r.model_problems.push_back(
          "wrong egress port: expected " + std::to_string(tc.expect_port) +
          ", got " + std::to_string(out.port));
    }
    std::vector<std::string> expect_seq;
    for (const packet::HeaderValues& h : tc.expect_packet.headers) {
      expect_seq.push_back(h.header);
    }
    actual = packet::parse_as(prog, expect_seq, out.bytes);
    if (!actual) {
      r.pass = false;
      r.model_problems.push_back(
          "output too short: expected " +
          std::to_string(tc.expect_bytes.size()) + " bytes, got " +
          std::to_string(out.bytes.size()));
    } else {
      packet::PacketDiff d =
          packet::diff_packets(prog, tc.expect_packet, *actual);
      if (!d.equal) {
        r.pass = false;
        for (std::string& diff : d.differences) {
          r.model_problems.push_back(std::move(diff));
        }
      }
    }
  }

  // --- intent checking -------------------------------------------------
  spec::Observation obs;
  obs.prog = &prog;
  obs.input = tc.input_packet;
  obs.in_port = tc.input.port;
  obs.delivered = !out.dropped && out.accepted;
  if (obs.delivered) {
    // Use the device's actual output when parseable; otherwise intents
    // that need the output will report it missing.
    if (actual) {
      obs.output = *actual;
    } else if (!tc.expect_drop) {
      // Try to parse with the expected layout anyway (may be absent).
      std::vector<std::string> expect_seq;
      for (const packet::HeaderValues& h : tc.expect_packet.headers) {
        expect_seq.push_back(h.header);
      }
      auto parsed = packet::parse_as(prog, expect_seq, out.bytes);
      if (parsed) obs.output = *parsed;
    }
    obs.out_port = out.port;
  }
  for (const spec::Intent& intent : intents) {
    if (!spec::applicable(intent, obs, ctx)) continue;
    for (std::string& problem : spec::check(intent, obs, ctx)) {
      r.pass = false;
      r.intent_problems.push_back("[" + intent.name + "] " +
                                  std::move(problem));
    }
  }
  return r;
}

}  // namespace meissa::driver
