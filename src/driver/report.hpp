// Test reports: per-case verdicts, aggregate counts, and the symbolic
// trace used for bug localization (paper §7).
#pragma once

#include <string>
#include <vector>

#include "driver/checker.hpp"
#include "driver/generator.hpp"

namespace meissa::driver {

struct CaseRecord {
  uint64_t template_id = 0;
  uint64_t case_id = 0;
  bool pass = true;
  std::vector<std::string> model_problems;
  std::vector<std::string> intent_problems;
  std::string symbolic_trace;              // populated on failure
  std::vector<std::string> physical_trace;  // device trace, on failure
};

struct TestReport {
  uint64_t templates = 0;
  uint64_t cases = 0;
  uint64_t passed = 0;
  uint64_t failed = 0;
  uint64_t removed_by_hash = 0;  // paper §4 hash filtering
  std::vector<CaseRecord> failures;
  GenStats gen;

  bool all_passed() const noexcept { return failed == 0 && cases > 0; }
  // Multi-line human-readable summary.
  std::string str() const;
};

// Renders a symbolic execution trace of `path` driven by `input`: executed
// statements with concrete values at each step (paper §7: "a trace that
// shows all executed actions, hit table rules, branching, and assignment
// statements, along with the values of corresponding arguments").
std::string symbolic_trace(const ir::Context& ctx, const cfg::Cfg& g,
                           const cfg::Path& path,
                           const ir::ConcreteState& input, size_t max_lines);

}  // namespace meissa::driver
