// Test reports: per-case verdicts, aggregate counts, and the symbolic
// trace used for bug localization (paper §7).
#pragma once

#include <string>
#include <vector>

#include "driver/checker.hpp"
#include "driver/generator.hpp"
#include "sim/link.hpp"

namespace meissa::driver {

struct CaseRecord {
  uint64_t template_id = 0;
  uint64_t case_id = 0;
  bool pass = true;
  std::vector<std::string> model_problems;
  std::vector<std::string> intent_problems;
  std::string symbolic_trace;              // populated on failure
  std::vector<std::string> physical_trace;  // device trace, on failure
};

struct TestReport {
  uint64_t templates = 0;
  uint64_t cases = 0;
  uint64_t passed = 0;
  uint64_t failed = 0;
  uint64_t removed_by_hash = 0;  // paper §4 hash filtering
  // Hash-obligation repair re-solves performed by the sender (bounded per
  // case by Sender::kMaxHashRepairRounds).
  uint64_t hash_repair_attempts = 0;

  // Robustness counters (all zero on a fault-free link).
  uint64_t send_retries = 0;         // per-case resends after silence/garbage
  uint64_t install_retries = 0;      // register installs retried
  uint64_t dedup_dropped = 0;        // duplicate/stale verdicts discarded
  uint64_t corruption_detected = 0;  // verdicts discarded as corrupted
  uint64_t backoff_units = 0;        // total simulated backoff waited
  std::vector<uint64_t> quarantined;  // case ids that exhausted retries
  sim::LinkStats link;               // what the link actually did

  // A cancel token handed to Meissa::test fired mid-run: the verdict
  // counts cover only the cases settled before the stop.
  bool cancelled = false;

  std::vector<CaseRecord> failures;
  GenStats gen;

  // Quarantined cases are counted in `cases` but are neither passed nor
  // failed: a run with quarantine is not a clean pass.
  bool all_passed() const noexcept {
    return failed == 0 && quarantined.empty() && cases > 0;
  }
  // Multi-line human-readable summary.
  std::string str() const;
  // Machine-readable summary (single JSON object; stable key order).
  std::string to_json() const;
};

// Renders a symbolic execution trace of `path` driven by `input`: executed
// statements with concrete values at each step (paper §7: "a trace that
// shows all executed actions, hit table rules, branching, and assignment
// statements, along with the values of corresponding arguments").
std::string symbolic_trace(const ir::Context& ctx, const cfg::Cfg& g,
                           const cfg::Path& path,
                           const ir::ConcreteState& input, size_t max_lines);

}  // namespace meissa::driver
