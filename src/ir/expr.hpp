// Bit-vector expressions — the `aexp`/`bexp` syntax of the paper (Fig. 3),
// extended with the operators production P4 programs need (xor, shifts,
// unsigned comparisons, negation).
//
// Expressions are immutable, hash-consed, and arena-owned: an ExprArena
// owns all nodes for one testing "universe" (one program under test), and
// everything else holds non-owning `ExprRef` pointers. Identical
// subexpressions share one node, so structural equality is pointer
// equality — which the symbolic executor and the code-summary pass rely on
// when intersecting path conditions.
//
// Thread safety: interning is safe to call concurrently. The intern table
// is sharded by structural hash, each shard owning its nodes in a deque
// (stable addresses), so parallel engine workers and concurrent
// code-summary passes can share one arena. Hash-consing keeps pointer
// identity canonical regardless of which thread interns a node first.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/field.hpp"
#include "util/bits.hpp"

namespace meissa::ir {

enum class ExprKind : uint8_t {
  kConst,      // width-bit constant
  kField,      // header-field variable
  kArith,      // binary arithmetic op (operands and result share a width)
  kBoolConst,  // true / false
  kCmp,        // unsigned comparison of two same-width arithmetic operands
  kBool,       // && / || of two boolean operands
  kNot,        // boolean negation
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr };
enum class CmpOp : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class BoolOp : uint8_t { kAnd, kOr };

struct Expr;
using ExprRef = const Expr*;

// One immutable expression node. Boolean-valued nodes have width 0.
struct Expr {
  ExprKind kind;
  uint8_t op;  // ArithOp / CmpOp / BoolOp depending on kind
  int width;   // bit width for arithmetic nodes; 0 for boolean nodes
  uint64_t value = 0;             // kConst: the constant; kBoolConst: 0/1
  FieldId field = kInvalidField;  // kField
  ExprRef lhs = nullptr;
  ExprRef rhs = nullptr;

  bool is_bool() const noexcept { return width == 0; }
  bool is_const() const noexcept { return kind == ExprKind::kConst; }
  bool is_true() const noexcept {
    return kind == ExprKind::kBoolConst && value == 1;
  }
  bool is_false() const noexcept {
    return kind == ExprKind::kBoolConst && value == 0;
  }
  ArithOp arith_op() const noexcept { return static_cast<ArithOp>(op); }
  CmpOp cmp_op() const noexcept { return static_cast<CmpOp>(op); }
  BoolOp bool_op() const noexcept { return static_cast<BoolOp>(op); }
};

// Applies `op` to width-truncated operands, returning a truncated result.
uint64_t apply_arith(ArithOp op, uint64_t a, uint64_t b, int width) noexcept;
bool apply_cmp(CmpOp op, uint64_t a, uint64_t b) noexcept;
const char* arith_op_name(ArithOp op) noexcept;
const char* cmp_op_name(CmpOp op) noexcept;

// Owning, hash-consing factory for expression nodes. All `make_*` functions
// perform local constant folding and algebraic identity simplification, so
// the returned node may be structurally smaller than requested (e.g.
// make_arith(kAdd, x, 0) returns x).
class ExprArena {
 public:
  ExprArena();
  ExprArena(const ExprArena&) = delete;
  ExprArena& operator=(const ExprArena&) = delete;

  ExprRef constant(uint64_t v, int width);
  ExprRef field(FieldId f, int width);
  ExprRef arith(ArithOp op, ExprRef a, ExprRef b);
  ExprRef bool_const(bool v) const noexcept { return v ? true_ : false_; }
  ExprRef cmp(CmpOp op, ExprRef a, ExprRef b);
  ExprRef band(ExprRef a, ExprRef b);
  ExprRef bor(ExprRef a, ExprRef b);
  ExprRef bnot(ExprRef a);

  // Conjunction/disjunction over a list (true/false for the empty list).
  ExprRef all_of(const std::vector<ExprRef>& xs);
  ExprRef any_of(const std::vector<ExprRef>& xs);

  // (field & mask) == value — the ternary-match predicate shape.
  ExprRef masked_eq(ExprRef f, uint64_t mask, uint64_t value);

  size_t node_count() const;

 private:
  ExprRef intern(Expr e);

  struct Hash {
    size_t operator()(const Expr& e) const noexcept;
  };
  struct Eq {
    bool operator()(const Expr& a, const Expr& b) const noexcept;
  };

  // One intern shard: a lock, the nodes it owns (deque: stable addresses),
  // and the consing map. Shard choice is a pure function of the node's
  // structural hash, so identical nodes always meet in the same shard.
  static constexpr size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::deque<Expr> nodes;
    std::unordered_map<Expr, ExprRef, Hash, Eq> interned;
  };
  std::array<Shard, kShards> shards_;
  ExprRef true_ = nullptr;
  ExprRef false_ = nullptr;
};

// --- Traversal & evaluation helpers (free functions) ----------------------

// Concrete state: a total or partial assignment of fields to values.
using ConcreteState = std::unordered_map<FieldId, uint64_t>;

// Evaluates `e` under `state`. Returns nullopt when the expression reads a
// field absent from the state. Boolean expressions evaluate to 0/1.
std::optional<uint64_t> eval(ExprRef e, const ConcreteState& state);

// Substitutes fields via `lookup` (return nullptr to keep a field symbolic),
// rebuilding — and thereby re-simplifying — the expression in `arena`.
ExprRef substitute(ExprRef e, ExprArena& arena,
                   const std::function<ExprRef(FieldId, int)>& lookup);

// Adds every field referenced by `e` to `out`.
void collect_fields(ExprRef e, std::unordered_set<FieldId>& out);

// Pretty-prints `e` using names from `fields`.
std::string to_string(ExprRef e, const FieldTable& fields);

}  // namespace meissa::ir
