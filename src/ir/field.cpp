#include "ir/field.hpp"

#include <mutex>

namespace meissa::ir {

FieldId FieldTable::intern(std::string_view name, int width) {
  util::check_width(width);
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    if (entries_[it->second].width != width) {
      throw util::ValidationError("field '" + std::string(name) +
                                  "' re-declared with different width");
    }
    return it->second;
  }
  FieldId id = static_cast<FieldId>(entries_.size());
  entries_.push_back({std::string(name), width});
  by_name_.emplace(entries_.back().name, id);
  return id;
}

FieldId FieldTable::find(std::string_view name) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidField : it->second;
}

FieldId FieldTable::require(std::string_view name) const {
  FieldId id = find(name);
  if (id == kInvalidField) {
    throw util::ValidationError("unknown field '" + std::string(name) + "'");
  }
  return id;
}

}  // namespace meissa::ir
