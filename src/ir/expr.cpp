#include "ir/expr.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace meissa::ir {

uint64_t apply_arith(ArithOp op, uint64_t a, uint64_t b, int width) noexcept {
  a = util::truncate(a, width);
  b = util::truncate(b, width);
  uint64_t r = 0;
  switch (op) {
    case ArithOp::kAdd: r = a + b; break;
    case ArithOp::kSub: r = a - b; break;
    case ArithOp::kMul: r = a * b; break;
    case ArithOp::kAnd: r = a & b; break;
    case ArithOp::kOr:  r = a | b; break;
    case ArithOp::kXor: r = a ^ b; break;
    case ArithOp::kShl: r = b >= static_cast<uint64_t>(width) ? 0 : a << b; break;
    case ArithOp::kShr: r = b >= static_cast<uint64_t>(width) ? 0 : a >> b; break;
  }
  return util::truncate(r, width);
}

bool apply_cmp(CmpOp op, uint64_t a, uint64_t b) noexcept {
  switch (op) {
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
  }
  return false;
}

const char* arith_op_name(ArithOp op) noexcept {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kAnd: return "&";
    case ArithOp::kOr:  return "|";
    case ArithOp::kXor: return "^";
    case ArithOp::kShl: return "<<";
    case ArithOp::kShr: return ">>";
  }
  return "?";
}

const char* cmp_op_name(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

size_t ExprArena::Hash::operator()(const Expr& e) const noexcept {
  size_t h = static_cast<size_t>(e.kind);
  auto mix = [&h](size_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(e.op);
  mix(static_cast<size_t>(e.width));
  mix(static_cast<size_t>(e.value));
  mix(static_cast<size_t>(e.field));
  mix(reinterpret_cast<size_t>(e.lhs));
  mix(reinterpret_cast<size_t>(e.rhs));
  return h;
}

bool ExprArena::Eq::operator()(const Expr& a, const Expr& b) const noexcept {
  return a.kind == b.kind && a.op == b.op && a.width == b.width &&
         a.value == b.value && a.field == b.field && a.lhs == b.lhs &&
         a.rhs == b.rhs;
}

ExprArena::ExprArena() {
  Expr t{};
  t.kind = ExprKind::kBoolConst;
  t.value = 1;
  true_ = intern(t);
  Expr f{};
  f.kind = ExprKind::kBoolConst;
  f.value = 0;
  false_ = intern(f);
}

ExprRef ExprArena::intern(Expr e) {
  Shard& s = shards_[Hash{}(e) % kShards];
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.interned.find(e);
  if (it != s.interned.end()) return it->second;
  s.nodes.push_back(e);
  ExprRef ref = &s.nodes.back();
  s.interned.emplace(e, ref);
  return ref;
}

size_t ExprArena::node_count() const {
  size_t n = 0;
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lk(s.mu);
    n += s.nodes.size();
  }
  return n;
}

ExprRef ExprArena::constant(uint64_t v, int width) {
  util::check_width(width);
  Expr e{};
  e.kind = ExprKind::kConst;
  e.width = width;
  e.value = util::truncate(v, width);
  return intern(e);
}

ExprRef ExprArena::field(FieldId f, int width) {
  util::check_width(width);
  Expr e{};
  e.kind = ExprKind::kField;
  e.width = width;
  e.field = f;
  return intern(e);
}

ExprRef ExprArena::arith(ArithOp op, ExprRef a, ExprRef b) {
  util::check(a != nullptr && b != nullptr, "arith: null operand");
  util::check(!a->is_bool() && !b->is_bool() && a->width == b->width,
              "arith: operand width mismatch");
  const int w = a->width;
  if (a->is_const() && b->is_const()) {
    return constant(apply_arith(op, a->value, b->value, w), w);
  }
  // Commutative ops: canonicalize the constant to the right so identity
  // rules below fire, and structurally equal expressions intern together.
  switch (op) {
    case ArithOp::kAdd:
    case ArithOp::kMul:
    case ArithOp::kAnd:
    case ArithOp::kOr:
    case ArithOp::kXor:
      if (a->is_const()) std::swap(a, b);
      break;
    default:
      break;
  }
  if (b->is_const()) {
    const uint64_t c = b->value;
    switch (op) {
      case ArithOp::kAdd:
      case ArithOp::kSub:
      case ArithOp::kXor:
      case ArithOp::kOr:
      case ArithOp::kShl:
      case ArithOp::kShr:
        if (c == 0) return a;
        break;
      case ArithOp::kAnd:
        if (c == 0) return constant(0, w);
        if (c == util::mask_bits(w)) return a;
        break;
      case ArithOp::kMul:
        if (c == 0) return constant(0, w);
        if (c == 1) return a;
        break;
    }
  }
  if (op == ArithOp::kXor && a == b) return constant(0, w);
  if ((op == ArithOp::kAnd || op == ArithOp::kOr) && a == b) return a;
  if (op == ArithOp::kSub && a == b) return constant(0, w);
  Expr e{};
  e.kind = ExprKind::kArith;
  e.op = static_cast<uint8_t>(op);
  e.width = w;
  e.lhs = a;
  e.rhs = b;
  return intern(e);
}

ExprRef ExprArena::cmp(CmpOp op, ExprRef a, ExprRef b) {
  util::check(a != nullptr && b != nullptr, "cmp: null operand");
  util::check(!a->is_bool() && !b->is_bool() && a->width == b->width,
              "cmp: operand width mismatch");
  if (a->is_const() && b->is_const()) {
    return bool_const(apply_cmp(op, a->value, b->value));
  }
  if (a == b) {
    switch (op) {
      case CmpOp::kEq:
      case CmpOp::kLe:
      case CmpOp::kGe:
        return bool_const(true);
      case CmpOp::kNe:
      case CmpOp::kLt:
      case CmpOp::kGt:
        return bool_const(false);
    }
  }
  // Canonicalize: constant on the right (flipping the comparison).
  if (a->is_const()) {
    std::swap(a, b);
    switch (op) {
      case CmpOp::kLt: op = CmpOp::kGt; break;
      case CmpOp::kLe: op = CmpOp::kGe; break;
      case CmpOp::kGt: op = CmpOp::kLt; break;
      case CmpOp::kGe: op = CmpOp::kLe; break;
      default: break;
    }
  }
  // Vacuous range comparisons against extremal constants.
  if (b->is_const()) {
    const uint64_t c = b->value;
    const uint64_t top = util::mask_bits(a->width);
    if (op == CmpOp::kLt && c == 0) return bool_const(false);
    if (op == CmpOp::kGe && c == 0) return bool_const(true);
    if (op == CmpOp::kGt && c == top) return bool_const(false);
    if (op == CmpOp::kLe && c == top) return bool_const(true);
  }
  Expr e{};
  e.kind = ExprKind::kCmp;
  e.op = static_cast<uint8_t>(op);
  e.lhs = a;
  e.rhs = b;
  return intern(e);
}

ExprRef ExprArena::band(ExprRef a, ExprRef b) {
  util::check(a != nullptr && b != nullptr && a->is_bool() && b->is_bool(),
              "band: boolean operands required");
  if (a->is_false() || b->is_false()) return bool_const(false);
  if (a->is_true()) return b;
  if (b->is_true()) return a;
  if (a == b) return a;
  Expr e{};
  e.kind = ExprKind::kBool;
  e.op = static_cast<uint8_t>(BoolOp::kAnd);
  e.lhs = a;
  e.rhs = b;
  return intern(e);
}

ExprRef ExprArena::bor(ExprRef a, ExprRef b) {
  util::check(a != nullptr && b != nullptr && a->is_bool() && b->is_bool(),
              "bor: boolean operands required");
  if (a->is_true() || b->is_true()) return bool_const(true);
  if (a->is_false()) return b;
  if (b->is_false()) return a;
  if (a == b) return a;
  Expr e{};
  e.kind = ExprKind::kBool;
  e.op = static_cast<uint8_t>(BoolOp::kOr);
  e.lhs = a;
  e.rhs = b;
  return intern(e);
}

ExprRef ExprArena::bnot(ExprRef a) {
  util::check(a != nullptr && a->is_bool(), "bnot: boolean operand required");
  if (a->is_true()) return bool_const(false);
  if (a->is_false()) return bool_const(true);
  if (a->kind == ExprKind::kNot) return a->lhs;  // double negation
  if (a->kind == ExprKind::kBool) {
    // De Morgan: keeps negations at the atoms, where the solver's domain
    // fast path can digest them.
    if (a->bool_op() == BoolOp::kAnd) return bor(bnot(a->lhs), bnot(a->rhs));
    return band(bnot(a->lhs), bnot(a->rhs));
  }
  if (a->kind == ExprKind::kCmp) {
    // Push negation into the comparison: ¬(x == y) is (x != y), etc.
    CmpOp inv;
    switch (a->cmp_op()) {
      case CmpOp::kEq: inv = CmpOp::kNe; break;
      case CmpOp::kNe: inv = CmpOp::kEq; break;
      case CmpOp::kLt: inv = CmpOp::kGe; break;
      case CmpOp::kLe: inv = CmpOp::kGt; break;
      case CmpOp::kGt: inv = CmpOp::kLe; break;
      case CmpOp::kGe: inv = CmpOp::kLt; break;
      default: inv = CmpOp::kEq; break;
    }
    return cmp(inv, a->lhs, a->rhs);
  }
  Expr e{};
  e.kind = ExprKind::kNot;
  e.lhs = a;
  return intern(e);
}

ExprRef ExprArena::all_of(const std::vector<ExprRef>& xs) {
  ExprRef acc = bool_const(true);
  for (ExprRef x : xs) acc = band(acc, x);
  return acc;
}

ExprRef ExprArena::any_of(const std::vector<ExprRef>& xs) {
  ExprRef acc = bool_const(false);
  for (ExprRef x : xs) acc = bor(acc, x);
  return acc;
}

ExprRef ExprArena::masked_eq(ExprRef f, uint64_t mask, uint64_t value) {
  util::check(f != nullptr && !f->is_bool(), "masked_eq: arith operand");
  const int w = f->width;
  mask = util::truncate(mask, w);
  value = util::truncate(value, w);
  if (mask == 0) return bool_const(true);
  return cmp(CmpOp::kEq, arith(ArithOp::kAnd, f, constant(mask, w)),
             constant(value & mask, w));
}

std::optional<uint64_t> eval(ExprRef e, const ConcreteState& state) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value;
    case ExprKind::kBoolConst:
      return e->value;
    case ExprKind::kField: {
      auto it = state.find(e->field);
      if (it == state.end()) return std::nullopt;
      return util::truncate(it->second, e->width);
    }
    case ExprKind::kArith: {
      auto a = eval(e->lhs, state);
      auto b = eval(e->rhs, state);
      if (!a || !b) return std::nullopt;
      return apply_arith(e->arith_op(), *a, *b, e->width);
    }
    case ExprKind::kCmp: {
      auto a = eval(e->lhs, state);
      auto b = eval(e->rhs, state);
      if (!a || !b) return std::nullopt;
      return apply_cmp(e->cmp_op(), *a, *b) ? 1 : 0;
    }
    case ExprKind::kBool: {
      // Short-circuit so partially-bound states still decide when possible.
      auto a = eval(e->lhs, state);
      if (e->bool_op() == BoolOp::kAnd) {
        if (a && *a == 0) return 0;
        auto b = eval(e->rhs, state);
        if (b && *b == 0) return 0;
        if (a && b) return 1;
        return std::nullopt;
      }
      if (a && *a == 1) return 1;
      auto b = eval(e->rhs, state);
      if (b && *b == 1) return 1;
      if (a && b) return 0;
      return std::nullopt;
    }
    case ExprKind::kNot: {
      auto a = eval(e->lhs, state);
      if (!a) return std::nullopt;
      return *a ? 0 : 1;
    }
  }
  return std::nullopt;
}

namespace {

ExprRef substitute_memo(ExprRef e, ExprArena& arena,
                        const std::function<ExprRef(FieldId, int)>& lookup,
                        std::unordered_map<ExprRef, ExprRef>& memo) {
  auto it = memo.find(e);
  if (it != memo.end()) return it->second;
  ExprRef out = e;
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kBoolConst:
      break;
    case ExprKind::kField: {
      ExprRef repl = lookup(e->field, e->width);
      if (repl != nullptr) out = repl;
      break;
    }
    case ExprKind::kArith: {
      ExprRef a = substitute_memo(e->lhs, arena, lookup, memo);
      ExprRef b = substitute_memo(e->rhs, arena, lookup, memo);
      if (a != e->lhs || b != e->rhs) out = arena.arith(e->arith_op(), a, b);
      break;
    }
    case ExprKind::kCmp: {
      ExprRef a = substitute_memo(e->lhs, arena, lookup, memo);
      ExprRef b = substitute_memo(e->rhs, arena, lookup, memo);
      if (a != e->lhs || b != e->rhs) out = arena.cmp(e->cmp_op(), a, b);
      break;
    }
    case ExprKind::kBool: {
      ExprRef a = substitute_memo(e->lhs, arena, lookup, memo);
      ExprRef b = substitute_memo(e->rhs, arena, lookup, memo);
      if (a != e->lhs || b != e->rhs) {
        out = e->bool_op() == BoolOp::kAnd ? arena.band(a, b) : arena.bor(a, b);
      }
      break;
    }
    case ExprKind::kNot: {
      ExprRef a = substitute_memo(e->lhs, arena, lookup, memo);
      if (a != e->lhs) out = arena.bnot(a);
      break;
    }
  }
  memo.emplace(e, out);
  return out;
}

}  // namespace

ExprRef substitute(ExprRef e, ExprArena& arena,
                   const std::function<ExprRef(FieldId, int)>& lookup) {
  std::unordered_map<ExprRef, ExprRef> memo;
  return substitute_memo(e, arena, lookup, memo);
}

void collect_fields(ExprRef e, std::unordered_set<FieldId>& out) {
  switch (e->kind) {
    case ExprKind::kConst:
    case ExprKind::kBoolConst:
      return;
    case ExprKind::kField:
      out.insert(e->field);
      return;
    case ExprKind::kNot:
      collect_fields(e->lhs, out);
      return;
    default:
      collect_fields(e->lhs, out);
      collect_fields(e->rhs, out);
      return;
  }
}

std::string to_string(ExprRef e, const FieldTable& fields) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value > 9 ? util::hex(e->value) : std::to_string(e->value);
    case ExprKind::kBoolConst:
      return e->value ? "true" : "false";
    case ExprKind::kField:
      return fields.name(e->field);
    case ExprKind::kArith:
      return "(" + to_string(e->lhs, fields) + " " +
             arith_op_name(e->arith_op()) + " " + to_string(e->rhs, fields) +
             ")";
    case ExprKind::kCmp:
      return "(" + to_string(e->lhs, fields) + " " + cmp_op_name(e->cmp_op()) +
             " " + to_string(e->rhs, fields) + ")";
    case ExprKind::kBool:
      return "(" + to_string(e->lhs, fields) +
             (e->bool_op() == BoolOp::kAnd ? " && " : " || ") +
             to_string(e->rhs, fields) + ")";
    case ExprKind::kNot:
      return "~" + to_string(e->lhs, fields);
  }
  return "?";
}

}  // namespace meissa::ir
