// Header-field variables (the `field_id` of the paper's CFG syntax, Fig. 3).
//
// Every variable a data-plane program reads or writes — packet header
// fields, per-pipeline header validity bits, intrinsic metadata, registers
// with constant indices (modeled as `REG:<name>-POS:<i>` per paper §4) —
// is interned into a FieldTable and referenced by a dense FieldId.
#pragma once

#include <cstdint>
#include <deque>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/bits.hpp"
#include "util/error.hpp"

namespace meissa::ir {

using FieldId = uint32_t;
inline constexpr FieldId kInvalidField = ~FieldId{0};

// Interning table mapping field names to ids and recording bit widths.
// Field names follow the dotted convention of the paper: "hdr.ipv4.dst_addr",
// "pkt.ig_port", "hdr.ipv4.$valid@ingress0".
//
// Thread safety: concurrent intern/lookup is safe (reader-writer lock;
// entries live in a deque so references returned by name() stay valid
// across later interns). Ids are dense and assigned in intern order — with
// concurrent interning the *numbering* is scheduling-dependent, so nothing
// user-visible may depend on numeric id order (sort by name instead).
class FieldTable {
 public:
  // Interns `name` with the given bit width. Re-interning an existing name
  // with the same width returns the existing id; a different width throws.
  FieldId intern(std::string_view name, int width);

  // Returns the id for `name`, or kInvalidField when absent.
  FieldId find(std::string_view name) const;

  // Like find(), but throws ValidationError when absent.
  FieldId require(std::string_view name) const;

  const std::string& name(FieldId id) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return entries_.at(id).name;
  }
  int width(FieldId id) const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return entries_.at(id).width;
  }
  size_t size() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return entries_.size();
  }

 private:
  struct Entry {
    std::string name;
    int width;
  };
  mutable std::shared_mutex mu_;
  std::deque<Entry> entries_;  // stable addresses for name() references
  std::unordered_map<std::string, FieldId> by_name_;
};

}  // namespace meissa::ir
