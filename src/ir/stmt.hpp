// CFG statements (Fig. 3): an action `field <- aexp` or a predicate
// `assume bexp`, plus the shared Context that owns fields and expressions.
#pragma once

#include <atomic>
#include <memory>

#include "ir/expr.hpp"
#include "ir/field.hpp"

namespace meissa::ir {

enum class StmtKind : uint8_t {
  kAssign,  // action node: field <- aexp
  kAssume,  // predicate node: assume bexp
  kNop,     // structural node (pipeline entry/exit, join points)
};

struct Stmt {
  StmtKind kind = StmtKind::kNop;
  FieldId target = kInvalidField;  // kAssign
  ExprRef expr = nullptr;          // kAssign: aexp; kAssume: bexp

  static Stmt assign(FieldId target, ExprRef aexp) {
    return Stmt{StmtKind::kAssign, target, aexp};
  }
  static Stmt assume(ExprRef bexp) {
    return Stmt{StmtKind::kAssume, kInvalidField, bexp};
  }
  static Stmt nop() { return Stmt{}; }
};

// The expression universe for one program under test. Owns the field table
// and the expression arena; every module takes a Context& and holds
// non-owning ExprRefs into it.
struct Context {
  FieldTable fields;
  ExprArena arena;
  // Monotonic counter for fresh "$free.N" symbols (unpinned hash results);
  // shared so independent engine runs never reuse a symbol name. Atomic so
  // concurrent explorations can allocate without a lock — but note the
  // numbering then depends on scheduling; deterministic callers pass a
  // fresh-symbol namespace to the engine instead (see EngineOptions).
  std::atomic<uint64_t> fresh_counter{0};

  // Convenience: intern a field and build its variable expression.
  ExprRef field_var(std::string_view name, int width) {
    return arena.field(fields.intern(name, width), width);
  }
  // Variable expression for an already-interned field.
  ExprRef var(FieldId id) { return arena.field(id, fields.width(id)); }
};

}  // namespace meissa::ir
