#include "p4/rules.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace meissa::p4 {

KeyMatch KeyMatch::exact(uint64_t v) {
  KeyMatch m;
  m.value = v;
  return m;
}

KeyMatch KeyMatch::ternary(uint64_t v, uint64_t mask) {
  KeyMatch m;
  m.value = v;
  m.mask = mask;
  return m;
}

KeyMatch KeyMatch::lpm(uint64_t v, int prefix_len) {
  KeyMatch m;
  m.value = v;
  m.prefix_len = prefix_len;
  return m;
}

KeyMatch KeyMatch::range(uint64_t lo, uint64_t hi) {
  KeyMatch m;
  m.lo = lo;
  m.hi = hi;
  return m;
}

KeyMatch KeyMatch::wildcard() { return ternary(0, 0); }

namespace {

uint64_t lpm_mask(int prefix_len, int width) {
  if (prefix_len <= 0) return 0;
  if (prefix_len >= width) return util::mask_bits(width);
  return util::mask_bits(width) ^ util::mask_bits(width - prefix_len);
}

}  // namespace

int entry_rank(const std::vector<MatchKind>& key_kinds, const TableEntry& a,
               const TableEntry& b) {
  // 1. Longest prefix, lexicographically over every lpm key. The old rule
  // consulted only the first lpm key (later ones never broke ties) and, in
  // mixed lpm+ternary tables, let the priority number override prefix
  // length — so a /16 with a smaller priority value shadowed a /24.
  for (size_t i = 0; i < key_kinds.size(); ++i) {
    if (key_kinds[i] != MatchKind::kLpm) continue;
    if (a.matches[i].prefix_len != b.matches[i].prefix_len) {
      return a.matches[i].prefix_len > b.matches[i].prefix_len ? -1 : 1;
    }
  }
  // 2. Priority number (smaller wins) for everything prefixes left tied.
  if (a.priority != b.priority) return a.priority < b.priority ? -1 : 1;
  // 3. Full tie: install order, owned by the caller's indexing.
  return 0;
}

std::vector<const TableEntry*> RuleSet::ordered_entries(
    const TableDef& table) const {
  std::vector<const TableEntry*> out;
  for (const TableEntry& e : entries) {
    if (e.table == table.name) out.push_back(&e);
  }
  bool has_lpm = false;
  bool has_ternary_or_range = false;
  std::vector<MatchKind> kinds;
  kinds.reserve(table.keys.size());
  for (const TableKey& k : table.keys) {
    kinds.push_back(k.kind);
    has_lpm |= k.kind == MatchKind::kLpm;
    has_ternary_or_range |=
        k.kind == MatchKind::kTernary || k.kind == MatchKind::kRange;
  }
  if (has_lpm || has_ternary_or_range) {
    // Stable sort: entry_rank's full ties keep install order.
    std::stable_sort(out.begin(), out.end(),
                     [&](const TableEntry* a, const TableEntry* b) {
                       return entry_rank(kinds, *a, *b) < 0;
                     });
  }
  return out;
}

ir::ExprRef key_predicate(ir::ExprArena& arena, ir::ExprRef field_expr,
                          MatchKind kind, const KeyMatch& m) {
  const int w = field_expr->width;
  switch (kind) {
    case MatchKind::kExact:
      return arena.cmp(ir::CmpOp::kEq, field_expr,
                       arena.constant(m.value, w));
    case MatchKind::kTernary:
      return arena.masked_eq(field_expr, m.mask, m.value & m.mask);
    case MatchKind::kLpm: {
      uint64_t mask = lpm_mask(m.prefix_len, w);
      return arena.masked_eq(field_expr, mask, m.value & mask);
    }
    case MatchKind::kRange:
      return arena.band(
          arena.cmp(ir::CmpOp::kGe, field_expr, arena.constant(m.lo, w)),
          arena.cmp(ir::CmpOp::kLe, field_expr, arena.constant(m.hi, w)));
  }
  throw util::InternalError("key_predicate: bad MatchKind");
}

ir::ExprRef entry_predicate(
    ir::Context& ctx, const Program& prog, const TableDef& table,
    const TableEntry& entry,
    const std::function<ir::ExprRef(std::string_view)>& field_lookup) {
  util::check(entry.matches.size() == table.keys.size(),
              "entry_predicate: key arity mismatch");
  (void)prog;
  ir::ExprRef acc = ctx.arena.bool_const(true);
  for (size_t i = 0; i < table.keys.size(); ++i) {
    ir::ExprRef f = field_lookup(table.keys[i].field);
    acc = ctx.arena.band(
        acc, key_predicate(ctx.arena, f, table.keys[i].kind, entry.matches[i]));
  }
  return acc;
}

namespace {

// Match-set intersection test for a single key.
bool key_may_overlap(MatchKind kind, const KeyMatch& a, const KeyMatch& b,
                     int width) {
  switch (kind) {
    case MatchKind::kExact:
      return a.value == b.value;
    case MatchKind::kTernary: {
      uint64_t both = a.mask & b.mask;
      return ((a.value ^ b.value) & both) == 0;
    }
    case MatchKind::kLpm: {
      uint64_t both = lpm_mask(std::min(a.prefix_len, b.prefix_len), width);
      return ((a.value ^ b.value) & both) == 0;
    }
    case MatchKind::kRange:
      return a.lo <= b.hi && b.lo <= a.hi;
  }
  return true;
}

}  // namespace

bool may_overlap(const TableDef& table, const TableEntry& a,
                 const TableEntry& b) {
  for (size_t i = 0; i < table.keys.size(); ++i) {
    // Widths only matter for lpm masks; callers validated declarations, so
    // a conservative 64 is sound here only for equal prefixes — look the
    // width up from neither program nor context: use 64 and rely on
    // prefix_len <= width from validation.
    if (!key_may_overlap(table.keys[i].kind, a.matches[i], b.matches[i], 64)) {
      return false;
    }
  }
  return true;
}

void validate_rules(const Program& prog, const RuleSet& rules) {
  for (const TableEntry& e : rules.entries) {
    const TableDef* t = prog.find_table(e.table);
    if (t == nullptr) {
      throw util::ValidationError("rule references unknown table '" + e.table +
                                  "'");
    }
    if (e.matches.size() != t->keys.size()) {
      throw util::ValidationError("rule for '" + e.table +
                                  "' has wrong key arity");
    }
    for (size_t i = 0; i < t->keys.size(); ++i) {
      std::optional<int> w = prog.field_width(t->keys[i].field);
      util::check(w.has_value(), "validated table has unknown key field");
      const KeyMatch& m = e.matches[i];
      switch (t->keys[i].kind) {
        case MatchKind::kExact:
          if (!util::fits(m.value, *w)) {
            throw util::ValidationError("exact match value too wide for '" +
                                        t->keys[i].field + "'");
          }
          break;
        case MatchKind::kTernary:
          if (!util::fits(m.mask, *w) || !util::fits(m.value, *w)) {
            throw util::ValidationError("ternary match too wide for '" +
                                        t->keys[i].field + "'");
          }
          break;
        case MatchKind::kLpm:
          if (m.prefix_len < 0 || m.prefix_len > *w) {
            throw util::ValidationError("lpm prefix out of range for '" +
                                        t->keys[i].field + "'");
          }
          break;
        case MatchKind::kRange:
          if (m.lo > m.hi || !util::fits(m.hi, *w)) {
            throw util::ValidationError("bad range match for '" +
                                        t->keys[i].field + "'");
          }
          break;
      }
    }
    const ActionDef* a = prog.find_action(e.action);
    if (a == nullptr) {
      throw util::ValidationError("rule uses unknown action '" + e.action +
                                  "'");
    }
    bool permitted = false;
    for (const std::string& name : t->actions) permitted |= name == e.action;
    if (!permitted) {
      throw util::ValidationError("action '" + e.action +
                                  "' not permitted in table '" + e.table + "'");
    }
    if (e.args.size() != a->params.size()) {
      throw util::ValidationError("rule for '" + e.table +
                                  "' has wrong argument arity for action '" +
                                  e.action + "'");
    }
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (!util::fits(e.args[i], a->params[i].width)) {
        throw util::ValidationError("argument " + std::to_string(i) +
                                    " too wide for action '" + e.action + "'");
      }
    }
  }
  for (const auto& [tname, def] : rules.default_overrides) {
    const TableDef* t = prog.find_table(tname);
    if (t == nullptr) {
      throw util::ValidationError("default override for unknown table '" +
                                  tname + "'");
    }
    const ActionDef* a = prog.find_action(def.action);
    if (a == nullptr || def.args.size() != a->params.size()) {
      throw util::ValidationError("bad default override for table '" + tname +
                                  "'");
    }
  }
}

}  // namespace meissa::p4
