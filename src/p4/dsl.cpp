#include "p4/dsl.hpp"

#include <cctype>
#include <unordered_map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::p4 {

namespace {

// ------------------------------------------------------------------ Lexer

enum class Tok : uint8_t { kIdent, kNumber, kPunct, kEnd };

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  uint64_t number = 0;
  int line = 1;
  int column = 1;  // 1-based column of the token's first character
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    advance();
    return t;
  }
  int line() const { return tok_.line; }
  int column() const { return tok_.column; }
  // Full text of the source line holding the current token (for the
  // caret-annotated snippet in parse errors).
  std::string line_text() const {
    size_t end = src_.find('\n', tok_line_start_);
    if (end == std::string_view::npos) end = src_.size();
    return std::string(src_.substr(tok_line_start_, end - tok_line_start_));
  }

 private:
  void advance() {
    skip_space_and_comments();
    tok_ = Token{};
    tok_.line = line_;
    tok_.column = static_cast<int>(pos_ - line_start_) + 1;
    tok_line_start_ = line_start_;
    if (pos_ >= src_.size()) {
      tok_.kind = Tok::kEnd;
      return;
    }
    char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t start = pos_;
      while (pos_ < src_.size() && ident_char(src_[pos_])) ++pos_;
      tok_.kind = Tok::kIdent;
      tok_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      int base = 10;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        base = 16;
        pos_ += 2;
      }
      while (pos_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      tok_.kind = Tok::kNumber;
      std::string text(src_.substr(start, pos_ - start));
      tok_.text = text;
      tok_.number = std::stoull(base == 16 ? text.substr(2) : text, nullptr,
                                base);
      return;
    }
    // Multi-character punctuation first.
    static const char* multi[] = {"->", "==", "!=", "<=", ">=", "&&",
                                  "||", "<<", ">>", ".."};
    for (const char* m : multi) {
      if (src_.substr(pos_).rfind(m, 0) == 0) {
        tok_.kind = Tok::kPunct;
        tok_.text = m;
        pos_ += 2;
        return;
      }
    }
    tok_.kind = Tok::kPunct;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  bool ident_char(char c) const {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return true;
    }
    // A dot continues an identifier only when followed by another
    // identifier character (so `0..5` and `a . b` don't glue).
    if (c == '.') {
      size_t next = pos_ + 1;
      // find position of this '.' relative to current scan
      return next < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[next])) ||
              src_[next] == '_' || src_[next] == '$');
    }
    return false;
  }

  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        line_start_ = pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#' ||
                 (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/')) {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  size_t line_start_ = 0;      // offset where the current scan line begins
  size_t tok_line_start_ = 0;  // offset where the current token's line begins
  Token tok_;
};

// ----------------------------------------------------------------- Parser

class M4Parser {
 public:
  M4Parser(std::string_view src, ir::Context& ctx)
      : lex_(src), ctx_(ctx), builder_(ctx, "m4") {}

  ParsedUnit parse() {
    // `program <name>;`
    expect_ident("program");
    prog_name_ = expect(Tok::kIdent).text;
    expect_punct(";");
    while (lex_.peek().kind != Tok::kEnd) {
      const std::string& kw = expect(Tok::kIdent).text;
      if (kw == "header") {
        parse_header();
      } else if (kw == "metadata") {
        parse_metadata();
      } else if (kw == "register") {
        parse_register();
      } else if (kw == "action") {
        parse_action();
      } else if (kw == "table") {
        parse_table();
      } else if (kw == "pipeline") {
        parse_pipeline();
      } else if (kw == "topology") {
        parse_topology();
      } else if (kw == "rules") {
        parse_rules();
      } else {
        fail("unexpected top-level keyword '" + kw + "'");
      }
    }
    ParsedUnit unit;
    unit.dp.program = builder_.build();
    unit.dp.program.name = prog_name_;
    unit.dp.topology = std::move(topology_);
    validate(unit.dp, ctx_);
    unit.rules = std::move(rules_);
    validate_rules(unit.dp.program, unit.rules);
    return unit;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw util::ParseError(what, lex_.line(), lex_.column(), lex_.line_text());
  }

  Token expect(Tok kind) {
    if (lex_.peek().kind != kind) {
      fail("expected " + std::string(kind == Tok::kIdent ? "identifier"
                                     : kind == Tok::kNumber ? "number"
                                                            : "symbol") +
           ", got '" + lex_.peek().text + "'");
    }
    return lex_.take();
  }

  void expect_punct(const std::string& p) {
    if (lex_.peek().kind != Tok::kPunct || lex_.peek().text != p) {
      fail("expected '" + p + "', got '" + lex_.peek().text + "'");
    }
    lex_.take();
  }

  void expect_ident(const std::string& word) {
    if (lex_.peek().kind != Tok::kIdent || lex_.peek().text != word) {
      fail("expected '" + word + "', got '" + lex_.peek().text + "'");
    }
    lex_.take();
  }

  bool accept_punct(const std::string& p) {
    if (lex_.peek().kind == Tok::kPunct && lex_.peek().text == p) {
      lex_.take();
      return true;
    }
    return false;
  }

  bool accept_ident(const std::string& word) {
    if (lex_.peek().kind == Tok::kIdent && lex_.peek().text == word) {
      lex_.take();
      return true;
    }
    return false;
  }

  // ----- declarations -----------------------------------------------------

  void parse_header() {
    std::string name = expect(Tok::kIdent).text;
    expect_punct("{");
    std::vector<FieldDef> fields;
    while (!accept_punct("}")) {
      std::string f = expect(Tok::kIdent).text;
      expect_punct(":");
      fields.push_back({f, static_cast<int>(expect(Tok::kNumber).number)});
      expect_punct(";");
    }
    builder_.header(std::move(name), std::move(fields));
  }

  void parse_metadata() {
    std::string name = expect(Tok::kIdent).text;
    expect_punct(":");
    int width = static_cast<int>(expect(Tok::kNumber).number);
    expect_punct(";");
    builder_.metadata_field(std::move(name), width);
  }

  void parse_register() {
    std::string name = expect(Tok::kIdent).text;
    expect_punct(":");
    int width = static_cast<int>(expect(Tok::kNumber).number);
    expect_punct("[");
    size_t cells = expect(Tok::kNumber).number;
    expect_punct("]");
    expect_punct(";");
    builder_.register_array(std::move(name), width, cells);
  }

  void parse_action() {
    ActionDef a;
    a.name = expect(Tok::kIdent).text;
    expect_punct("(");
    if (!accept_punct(")")) {
      do {
        std::string p = expect(Tok::kIdent).text;
        expect_punct(":");
        a.params.push_back(
            {p, static_cast<int>(expect(Tok::kNumber).number)});
      } while (accept_punct(","));
      expect_punct(")");
    }
    // Params must be interned before the body references them.
    current_action_ = &a;
    for (const FieldDef& p : a.params) {
      ctx_.fields.intern(param_field(a.name, p.name), p.width);
    }
    expect_punct("{");
    while (!accept_punct("}")) {
      a.ops.push_back(parse_stmt());
    }
    current_action_ = nullptr;
    builder_.action(std::move(a));
  }

  ActionOp parse_stmt() {
    std::string head = expect(Tok::kIdent).text;
    if (head == "set_valid" || head == "set_invalid") {
      expect_punct("(");
      std::string h = expect(Tok::kIdent).text;
      expect_punct(")");
      expect_punct(";");
      return head == "set_valid" ? ActionOp::set_valid(std::move(h))
                                 : ActionOp::set_invalid(std::move(h));
    }
    expect_punct("=");
    // Hash forms: dest = crc16(f, ...);
    if (lex_.peek().kind == Tok::kIdent &&
        (lex_.peek().text == "crc16" || lex_.peek().text == "crc32" ||
         lex_.peek().text == "csum16" || lex_.peek().text == "xorfold")) {
      std::string algo = lex_.take().text;
      expect_punct("(");
      std::vector<std::string> keys;
      do {
        keys.push_back(expect(Tok::kIdent).text);
      } while (accept_punct(","));
      expect_punct(")");
      expect_punct(";");
      HashAlgo h = algo == "crc16"    ? HashAlgo::kCrc16
                   : algo == "crc32"  ? HashAlgo::kCrc32
                   : algo == "csum16" ? HashAlgo::kCsum16
                                      : HashAlgo::kIdentityXor;
      return ActionOp::hash(std::move(head), h, std::move(keys));
    }
    ir::ExprRef value = parse_expr();
    expect_punct(";");
    std::optional<int> w = field_width(head);
    if (!w) fail("assignment to unknown field '" + head + "'");
    if (value->is_bool()) fail("boolean value assigned to '" + head + "'");
    if (value->width != *w) {
      fail("width mismatch assigning to '" + head + "' (" +
           std::to_string(value->width) + " vs " + std::to_string(*w) + ")");
    }
    return ActionOp::assign(std::move(head), value);
  }

  // ----- expressions (precedence climbing) --------------------------------

  std::optional<int> field_width(const std::string& name) {
    // Builder's program is still being built; consult its declarations.
    if (current_action_ != nullptr) {
      for (const FieldDef& p : current_action_->params) {
        if (p.name == name) return p.width;
      }
    }
    // Temporarily materialize: ProgramBuilder keeps declarations inside;
    // we track widths through the context (fields are interned eagerly).
    ir::FieldId f = ctx_.fields.find(name);
    if (f != ir::kInvalidField) return ctx_.fields.width(f);
    if (name == kIngressPort || name == kEgressSpec) return kPortWidth;
    if (name == kDropFlag) return 1;
    return std::nullopt;
  }

  ir::ExprRef leaf_for(const std::string& name) {
    if (current_action_ != nullptr) {
      for (const FieldDef& p : current_action_->params) {
        if (p.name == name) {
          return builder_.arg(current_action_->name, p.name, p.width);
        }
      }
    }
    std::optional<int> w = field_width(name);
    if (!w) fail("unknown field '" + name + "' in expression");
    return ctx_.field_var(name, *w);
  }

  ir::ExprRef parse_primary(int width_hint) {
    if (accept_punct("(")) {
      ir::ExprRef e = parse_expr(width_hint);
      expect_punct(")");
      return e;
    }
    if (accept_punct("!")) {
      ir::ExprRef e = parse_primary(width_hint);
      if (!e->is_bool()) fail("'!' applied to a non-boolean");
      return ctx_.arena.bnot(e);
    }
    if (lex_.peek().kind == Tok::kNumber) {
      Token t = lex_.take();
      // Constant widths come from context (the other operand) or default
      // to the smallest width that fits.
      int w = width_hint;
      if (w <= 0) {
        w = 1;
        while (!util::fits(t.number, w)) ++w;
      }
      if (!util::fits(t.number, w)) {
        fail("constant " + t.text + " does not fit in " + std::to_string(w) +
             " bits");
      }
      return ctx_.arena.constant(t.number, w);
    }
    Token t = expect(Tok::kIdent);
    if (t.text == "valid" && accept_punct("(")) {
      std::string h = expect(Tok::kIdent).text;
      expect_punct(")");
      return builder_.is_valid(h);
    }
    return leaf_for(t.text);
  }

  // Binary operator precedence (higher binds tighter).
  int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      return 3;
    }
    if (op == "|") return 4;
    if (op == "^") return 5;
    if (op == "&") return 6;
    if (op == "<<" || op == ">>") return 7;
    if (op == "+" || op == "-") return 8;
    return -1;
  }

  ir::ExprRef combine(const std::string& op, ir::ExprRef a, ir::ExprRef b) {
    auto need_arith = [&](ir::ExprRef x) {
      if (x->is_bool()) fail("boolean operand to '" + op + "'");
    };
    auto need_bool = [&](ir::ExprRef x) {
      if (!x->is_bool()) fail("non-boolean operand to '" + op + "'");
    };
    if (op == "||" || op == "&&") {
      need_bool(a);
      need_bool(b);
      return op == "||" ? ctx_.arena.bor(a, b) : ctx_.arena.band(a, b);
    }
    need_arith(a);
    need_arith(b);
    if (a->width != b->width) {
      fail("operand width mismatch for '" + op + "'");
    }
    if (op == "==") return ctx_.arena.cmp(ir::CmpOp::kEq, a, b);
    if (op == "!=") return ctx_.arena.cmp(ir::CmpOp::kNe, a, b);
    if (op == "<") return ctx_.arena.cmp(ir::CmpOp::kLt, a, b);
    if (op == "<=") return ctx_.arena.cmp(ir::CmpOp::kLe, a, b);
    if (op == ">") return ctx_.arena.cmp(ir::CmpOp::kGt, a, b);
    if (op == ">=") return ctx_.arena.cmp(ir::CmpOp::kGe, a, b);
    ir::ArithOp aop;
    if (op == "+") aop = ir::ArithOp::kAdd;
    else if (op == "-") aop = ir::ArithOp::kSub;
    else if (op == "&") aop = ir::ArithOp::kAnd;
    else if (op == "|") aop = ir::ArithOp::kOr;
    else if (op == "^") aop = ir::ArithOp::kXor;
    else if (op == "<<") aop = ir::ArithOp::kShl;
    else if (op == ">>") aop = ir::ArithOp::kShr;
    else fail("unknown operator '" + op + "'");
    return ctx_.arena.arith(aop, a, b);
  }

  // Peeks ahead to find a width hint when the left operand is a number
  // (e.g. `5 < hdr.ipv4.ttl` — rare, but keep constants flexible).
  ir::ExprRef parse_expr(int width_hint = 0) {
    return parse_binary(parse_primary(width_hint), 0, width_hint);
  }

  ir::ExprRef parse_binary(ir::ExprRef lhs, int min_prec, int width_hint) {
    while (lex_.peek().kind == Tok::kPunct &&
           precedence(lex_.peek().text) >= std::max(min_prec, 1)) {
      std::string op = lex_.take().text;
      int prec = precedence(op);
      int hint = lhs->is_bool() ? width_hint : lhs->width;
      ir::ExprRef rhs = parse_primary(hint);
      while (lex_.peek().kind == Tok::kPunct &&
             precedence(lex_.peek().text) > prec) {
        rhs = parse_binary(rhs, precedence(lex_.peek().text), hint);
      }
      lhs = combine(op, lhs, rhs);
    }
    return lhs;
  }

  // ----- tables -------------------------------------------------------------

  void parse_table() {
    TableDef t;
    t.name = expect(Tok::kIdent).text;
    expect_punct("{");
    while (!accept_punct("}")) {
      std::string kw = expect(Tok::kIdent).text;
      if (kw == "key") {
        do {
          std::string f = expect(Tok::kIdent).text;
          expect_punct(":");
          std::string kind = expect(Tok::kIdent).text;
          MatchKind mk;
          if (kind == "exact") mk = MatchKind::kExact;
          else if (kind == "ternary") mk = MatchKind::kTernary;
          else if (kind == "lpm") mk = MatchKind::kLpm;
          else if (kind == "range") mk = MatchKind::kRange;
          else fail("unknown match kind '" + kind + "'");
          t.keys.push_back({std::move(f), mk});
        } while (accept_punct(","));
        expect_punct(";");
      } else if (kw == "actions") {
        do {
          t.actions.push_back(expect(Tok::kIdent).text);
        } while (accept_punct(","));
        expect_punct(";");
      } else if (kw == "default") {
        t.default_action = expect(Tok::kIdent).text;
        expect_punct("(");
        if (!accept_punct(")")) {
          do {
            t.default_args.push_back(expect(Tok::kNumber).number);
          } while (accept_punct(","));
          expect_punct(")");
        }
        expect_punct(";");
      } else {
        fail("unexpected table clause '" + kw + "'");
      }
    }
    builder_.table(std::move(t));
  }

  // ----- pipelines ----------------------------------------------------------

  void parse_pipeline() {
    PipelineDef p;
    p.name = expect(Tok::kIdent).text;
    expect_punct("{");
    while (!accept_punct("}")) {
      std::string kw = expect(Tok::kIdent).text;
      if (kw == "parser") {
        parse_parser(p.parser);
      } else if (kw == "control") {
        expect_punct("{");
        p.control = parse_block();
      } else if (kw == "deparser") {
        parse_deparser(p.deparser);
      } else {
        fail("unexpected pipeline section '" + kw + "'");
      }
    }
    builder_.pipeline(std::move(p));
  }

  void parse_parser(p4::Parser& parser) {
    expect_punct("{");
    bool first = true;
    while (!accept_punct("}")) {
      expect_ident("state");
      ParserState s;
      s.name = expect(Tok::kIdent).text;
      if (first) {
        parser.start = s.name;
        first = false;
      }
      expect_punct("{");
      while (!accept_punct("}")) {
        std::string kw = expect(Tok::kIdent).text;
        if (kw == "extract") {
          do {
            s.extracts.push_back(expect(Tok::kIdent).text);
          } while (accept_punct(","));
          expect_punct(";");
        } else if (kw == "goto") {
          s.default_next = expect(Tok::kIdent).text;
          expect_punct(";");
        } else if (kw == "select") {
          s.select_field = expect(Tok::kIdent).text;
          std::optional<int> w = field_width(s.select_field);
          if (!w) fail("select on unknown field '" + s.select_field + "'");
          expect_punct("{");
          while (!accept_punct("}")) {
            if (accept_ident("default")) {
              expect_punct("->");
              s.default_next = expect(Tok::kIdent).text;
              expect_punct(";");
              continue;
            }
            ParserTransition tr;
            tr.value = expect(Tok::kNumber).number;
            tr.mask = util::mask_bits(*w);
            if (accept_punct("/")) tr.mask = expect(Tok::kNumber).number;
            expect_punct("->");
            tr.next = expect(Tok::kIdent).text;
            expect_punct(";");
            s.cases.push_back(tr);
          }
        } else {
          fail("unexpected parser clause '" + kw + "'");
        }
      }
      parser.states.push_back(std::move(s));
    }
  }

  ControlBlock parse_block() {
    ControlBlock b;
    while (!accept_punct("}")) {
      if (accept_ident("apply")) {
        b.stmts.push_back(ControlStmt::apply(expect(Tok::kIdent).text));
        expect_punct(";");
      } else if (accept_ident("if")) {
        expect_punct("(");
        ir::ExprRef cond = parse_expr();
        if (!cond->is_bool()) fail("if-condition must be boolean");
        expect_punct(")");
        expect_punct("{");
        ControlBlock then_block = parse_block();
        ControlBlock else_block;
        if (accept_ident("else")) {
          expect_punct("{");
          else_block = parse_block();
        }
        b.stmts.push_back(ControlStmt::if_else(cond, std::move(then_block),
                                               std::move(else_block)));
      } else {
        b.stmts.push_back(ControlStmt::inline_op(parse_stmt()));
      }
    }
    return b;
  }

  void parse_deparser(Deparser& d) {
    expect_punct("{");
    while (!accept_punct("}")) {
      std::string kw = expect(Tok::kIdent).text;
      if (kw == "emit") {
        do {
          d.emit_order.push_back(expect(Tok::kIdent).text);
        } while (accept_punct(","));
        expect_punct(";");
      } else if (kw == "checksum") {
        ChecksumUpdate u;
        u.dest = expect(Tok::kIdent).text;
        expect_ident("over");
        u.guard_header = expect(Tok::kIdent).text;
        expect_punct("(");
        do {
          u.sources.push_back(expect(Tok::kIdent).text);
        } while (accept_punct(","));
        expect_punct(")");
        expect_punct(";");
        d.checksum_updates.push_back(std::move(u));
      } else {
        fail("unexpected deparser clause '" + kw + "'");
      }
    }
  }

  // ----- topology & rules -----------------------------------------------------

  void parse_topology() {
    expect_punct("{");
    while (!accept_punct("}")) {
      std::string kw = expect(Tok::kIdent).text;
      if (kw == "instance") {
        PipeInstance inst;
        inst.name = expect(Tok::kIdent).text;
        expect_punct("=");
        inst.pipeline = expect(Tok::kIdent).text;
        expect_punct("@");
        expect_ident("switch");
        inst.switch_id = static_cast<int>(expect(Tok::kNumber).number);
        expect_punct(";");
        topology_.instances.push_back(std::move(inst));
      } else if (kw == "entry") {
        EntryPoint e;
        e.instance = expect(Tok::kIdent).text;
        if (accept_ident("when")) e.guard = parse_expr();
        expect_punct(";");
        topology_.entries.push_back(std::move(e));
      } else if (kw == "edge") {
        TopoEdge e;
        e.from = expect(Tok::kIdent).text;
        expect_punct("->");
        e.to = expect(Tok::kIdent).text;
        if (accept_ident("when")) e.guard = parse_expr();
        expect_punct(";");
        topology_.edges.push_back(std::move(e));
      } else {
        fail("unexpected topology clause '" + kw + "'");
      }
    }
  }

  void parse_rules() {
    expect_punct("{");
    while (!accept_punct("}")) {
      TableEntry e;
      e.table = expect(Tok::kIdent).text;
      expect_punct(":");
      do {
        std::string kind = expect(Tok::kIdent).text;
        KeyMatch m;
        if (kind == "exact") {
          m = KeyMatch::exact(expect(Tok::kNumber).number);
        } else if (kind == "ternary") {
          uint64_t v = expect(Tok::kNumber).number;
          expect_punct("/");
          m = KeyMatch::ternary(v, expect(Tok::kNumber).number);
        } else if (kind == "lpm") {
          uint64_t v = expect(Tok::kNumber).number;
          expect_punct("/");
          m = KeyMatch::lpm(v, static_cast<int>(expect(Tok::kNumber).number));
        } else if (kind == "range") {
          uint64_t lo = expect(Tok::kNumber).number;
          expect_punct("..");
          m = KeyMatch::range(lo, expect(Tok::kNumber).number);
        } else if (kind == "any") {
          m = KeyMatch::wildcard();
        } else {
          fail("unknown match '" + kind + "'");
        }
        e.matches.push_back(m);
      } while (accept_punct(","));
      if (accept_ident("prio")) {
        e.priority = static_cast<int>(expect(Tok::kNumber).number);
      }
      expect_punct("->");
      e.action = expect(Tok::kIdent).text;
      expect_punct("(");
      if (!accept_punct(")")) {
        do {
          e.args.push_back(expect(Tok::kNumber).number);
        } while (accept_punct(","));
        expect_punct(")");
      }
      expect_punct(";");
      rules_.add(std::move(e));
    }
  }

  Lexer lex_;
  ir::Context& ctx_;
  ProgramBuilder builder_;
  std::string prog_name_;
  ActionDef* current_action_ = nullptr;
  Topology topology_;
  RuleSet rules_;
};

}  // namespace

ParsedUnit parse_m4(std::string_view source, ir::Context& ctx) {
  return M4Parser(source, ctx).parse();
}

}  // namespace meissa::p4
