#include "p4/program.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::p4 {

// ---------------------------------------------------------------- Headers

int HeaderDef::bit_size() const {
  int bits = 0;
  for (const FieldDef& f : fields) bits += f.width;
  return bits;
}

const FieldDef* HeaderDef::find_field(std::string_view field) const {
  for (const FieldDef& f : fields) {
    if (f.name == field) return &f;
  }
  return nullptr;
}

std::string content_field(std::string_view header, std::string_view field) {
  return "hdr." + std::string(header) + "." + std::string(field);
}

std::string validity_field(std::string_view header) {
  return "hdr." + std::string(header) + ".$valid";
}

std::string validity_field_at(std::string_view header,
                              std::string_view instance) {
  return validity_field(header) + "@" + std::string(instance);
}

std::string param_field(std::string_view action, std::string_view param) {
  return "$arg." + std::string(action) + "." + std::string(param);
}

std::string register_field(std::string_view reg, uint64_t index) {
  return "REG:" + std::string(reg) + "-POS:" + std::to_string(index);
}

// ----------------------------------------------------------------- Hashes

uint64_t compute_hash(HashAlgo algo, const std::vector<uint64_t>& keys,
                      const std::vector<int>& key_widths, int out_width) {
  util::check(keys.size() == key_widths.size(), "compute_hash: arity");
  // Serialize keys MSB-first into a byte stream, then hash the stream.
  std::vector<uint8_t> bytes;
  for (size_t i = 0; i < keys.size(); ++i) {
    int w = key_widths[i];
    int nbytes = (w + 7) / 8;
    for (int b = nbytes - 1; b >= 0; --b) {
      bytes.push_back(static_cast<uint8_t>(keys[i] >> (8 * b)));
    }
  }
  uint64_t h = 0;
  switch (algo) {
    case HashAlgo::kCrc16: {
      // CRC-16/CCITT-FALSE.
      uint16_t crc = 0xffff;
      for (uint8_t byte : bytes) {
        crc ^= static_cast<uint16_t>(byte) << 8;
        for (int i = 0; i < 8; ++i) {
          crc = (crc & 0x8000) ? static_cast<uint16_t>((crc << 1) ^ 0x1021)
                               : static_cast<uint16_t>(crc << 1);
        }
      }
      h = crc;
      break;
    }
    case HashAlgo::kCrc32: {
      uint32_t crc = 0xffffffffu;
      for (uint8_t byte : bytes) {
        crc ^= byte;
        for (int i = 0; i < 8; ++i) {
          crc = (crc & 1) ? (crc >> 1) ^ 0xedb88320u : crc >> 1;
        }
      }
      h = ~crc;
      break;
    }
    case HashAlgo::kCsum16: {
      // Ones-complement sum of 16-bit big-endian words.
      uint64_t sum = 0;
      for (size_t i = 0; i < bytes.size(); i += 2) {
        uint16_t word = static_cast<uint16_t>(bytes[i]) << 8;
        if (i + 1 < bytes.size()) word |= bytes[i + 1];
        sum += word;
      }
      while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
      h = ~sum & 0xffff;
      break;
    }
    case HashAlgo::kIdentityXor: {
      for (size_t i = 0; i < keys.size(); ++i) h ^= keys[i];
      break;
    }
  }
  return util::truncate(h, out_width);
}

// ---------------------------------------------------------------- Actions

ActionOp ActionOp::assign(std::string dest, ir::ExprRef value) {
  ActionOp op;
  op.kind = Kind::kAssign;
  op.dest = std::move(dest);
  op.value = value;
  return op;
}

ActionOp ActionOp::set_valid(std::string header) {
  ActionOp op;
  op.kind = Kind::kSetValid;
  op.header = std::move(header);
  return op;
}

ActionOp ActionOp::set_invalid(std::string header) {
  ActionOp op;
  op.kind = Kind::kSetInvalid;
  op.header = std::move(header);
  return op;
}

ActionOp ActionOp::hash(std::string dest, HashAlgo algo,
                        std::vector<std::string> keys) {
  ActionOp op;
  op.kind = Kind::kHash;
  op.dest = std::move(dest);
  op.algo = algo;
  op.hash_keys = std::move(keys);
  return op;
}

// --------------------------------------------------------------- Controls

ControlStmt ControlStmt::apply(std::string table) {
  ControlStmt s;
  s.kind = Kind::kApply;
  s.table = std::move(table);
  return s;
}

ControlStmt ControlStmt::if_else(ir::ExprRef cond, ControlBlock then_block,
                                 ControlBlock else_block) {
  ControlStmt s;
  s.kind = Kind::kIf;
  s.cond = cond;
  s.then_block = std::move(then_block);
  s.else_block = std::move(else_block);
  return s;
}

ControlStmt ControlStmt::inline_op(ActionOp op) {
  ControlStmt s;
  s.kind = Kind::kOp;
  s.op = std::move(op);
  return s;
}

// ---------------------------------------------------------------- Program

const ParserState* Parser::find_state(std::string_view name) const {
  for (const ParserState& s : states) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HeaderDef* Program::find_header(std::string_view name) const {
  for (const HeaderDef& h : headers) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const ActionDef* Program::find_action(std::string_view name) const {
  for (const ActionDef& a : actions) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const TableDef* Program::find_table(std::string_view name) const {
  for (const TableDef& t : tables) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

const PipelineDef* Program::find_pipeline(std::string_view name) const {
  for (const PipelineDef& p : pipelines) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::optional<int> Program::field_width(std::string_view full_name) const {
  // Strip an instance qualifier from validity fields.
  std::string_view base = full_name;
  size_t at = base.find('@');
  if (at != std::string_view::npos) base = base.substr(0, at);

  if (util::starts_with(base, "hdr.")) {
    std::string_view rest = base.substr(4);
    size_t dot = rest.find('.');
    if (dot == std::string_view::npos) return std::nullopt;
    std::string_view hname = rest.substr(0, dot);
    std::string_view fname = rest.substr(dot + 1);
    const HeaderDef* h = find_header(hname);
    if (h == nullptr) return std::nullopt;
    if (fname == "$valid") return 1;
    const FieldDef* f = h->find_field(fname);
    if (f == nullptr) return std::nullopt;
    return f->width;
  }
  for (const FieldDef& f : metadata) {
    if (f.name == base) return f.width;
  }
  for (const FieldDef& f : registers) {
    if (f.name == base) return f.width;
  }
  if (base == kIngressPort || base == kEgressSpec) return kPortWidth;
  if (base == kDropFlag) return 1;
  return std::nullopt;
}

namespace {

size_t control_loc(const ControlBlock& b) {
  size_t n = 0;
  for (const ControlStmt& s : b.stmts) {
    switch (s.kind) {
      case ControlStmt::Kind::kApply:
      case ControlStmt::Kind::kOp:
        n += 1;
        break;
      case ControlStmt::Kind::kIf:
        n += 2 + control_loc(s.then_block) + control_loc(s.else_block);
        break;
    }
  }
  return n;
}

}  // namespace

size_t Program::loc() const {
  size_t n = 0;
  for (const HeaderDef& h : headers) n += 2 + h.fields.size();
  n += metadata.size() + registers.size();
  for (const ActionDef& a : actions) n += 2 + a.ops.size();
  for (const TableDef& t : tables) n += 4 + t.keys.size() + t.actions.size();
  for (const PipelineDef& p : pipelines) {
    for (const ParserState& s : p.parser.states) {
      n += 2 + s.extracts.size() + s.cases.size();
    }
    n += 2 + control_loc(p.control);
    n += 1 + p.deparser.emit_order.size() +
         3 * p.deparser.checksum_updates.size();
  }
  return n;
}

// --------------------------------------------------------------- Topology

const PipeInstance* Topology::find_instance(std::string_view name) const {
  for (const PipeInstance& i : instances) {
    if (i.name == name) return &i;
  }
  return nullptr;
}

std::vector<const TopoEdge*> Topology::edges_from(std::string_view name) const {
  std::vector<const TopoEdge*> out;
  for (const TopoEdge& e : edges) {
    if (e.from == name) out.push_back(&e);
  }
  return out;
}

int Topology::num_switches() const {
  int max_id = -1;
  for (const PipeInstance& i : instances) max_id = std::max(max_id, i.switch_id);
  return max_id + 1;
}

std::vector<std::string> Topology::topo_order() const {
  std::unordered_map<std::string, int> indegree;
  for (const PipeInstance& i : instances) indegree[i.name] = 0;
  for (const TopoEdge& e : edges) {
    auto it = indegree.find(e.to);
    util::check(it != indegree.end(), "topo edge to unknown instance");
    ++it->second;
  }
  std::vector<std::string> order;
  std::vector<std::string> ready;
  // Seed with zero-indegree instances, preserving declaration order for
  // deterministic output.
  for (const PipeInstance& i : instances) {
    if (indegree[i.name] == 0) ready.push_back(i.name);
  }
  while (!ready.empty()) {
    std::string cur = ready.front();
    ready.erase(ready.begin());
    order.push_back(cur);
    for (const TopoEdge& e : edges) {
      if (e.from != cur) continue;
      if (--indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  if (order.size() != instances.size()) {
    throw util::ValidationError(
        "pipeline topology has a cycle; unroll recirculation into distinct "
        "instances (paper §4)");
  }
  return order;
}

// ------------------------------------------------------------ Builder API

ProgramBuilder::ProgramBuilder(ir::Context& ctx, std::string name)
    : ctx_(ctx) {
  prog_.name = std::move(name);
}

ProgramBuilder& ProgramBuilder::header(std::string name,
                                       std::vector<FieldDef> fields) {
  prog_.headers.push_back({std::move(name), std::move(fields)});
  const HeaderDef& h = prog_.headers.back();
  for (const FieldDef& f : h.fields) {
    ctx_.fields.intern(content_field(h.name, f.name), f.width);
  }
  ctx_.fields.intern(validity_field(h.name), 1);
  return *this;
}

ProgramBuilder& ProgramBuilder::metadata_field(std::string full_name,
                                               int width, bool telemetry) {
  ctx_.fields.intern(full_name, width);
  prog_.metadata.push_back({std::move(full_name), width, telemetry});
  return *this;
}

ProgramBuilder& ProgramBuilder::register_array(std::string name, int width,
                                               size_t cells) {
  for (size_t i = 0; i < cells; ++i) {
    std::string cell = register_field(name, i);
    ctx_.fields.intern(cell, width);
    prog_.registers.push_back({std::move(cell), width});
  }
  return *this;
}

ProgramBuilder& ProgramBuilder::action(ActionDef a) {
  for (const FieldDef& p : a.params) {
    ctx_.fields.intern(param_field(a.name, p.name), p.width);
  }
  prog_.actions.push_back(std::move(a));
  return *this;
}

ProgramBuilder& ProgramBuilder::table(TableDef t) {
  prog_.tables.push_back(std::move(t));
  return *this;
}

ProgramBuilder& ProgramBuilder::pipeline(PipelineDef p) {
  prog_.pipelines.push_back(std::move(p));
  return *this;
}

ir::ExprRef ProgramBuilder::var(std::string_view full_name) {
  std::optional<int> w = prog_.field_width(full_name);
  if (!w) {
    throw util::ValidationError("var: undeclared field '" +
                                std::string(full_name) + "'");
  }
  return ctx_.field_var(full_name, *w);
}

ir::ExprRef ProgramBuilder::arg(std::string_view action,
                                std::string_view param, int width) {
  return ctx_.field_var(param_field(action, param), width);
}

ir::ExprRef ProgramBuilder::is_valid(std::string_view header) {
  ir::ExprRef v = ctx_.field_var(validity_field(header), 1);
  return ctx_.arena.cmp(ir::CmpOp::kEq, v, ctx_.arena.constant(1, 1));
}

Program ProgramBuilder::build() {
  intern_program_fields(prog_, ctx_);
  validate(prog_, ctx_);
  return std::move(prog_);
}

void intern_program_fields(const Program& prog, ir::Context& ctx) {
  for (const HeaderDef& h : prog.headers) {
    for (const FieldDef& f : h.fields) {
      ctx.fields.intern(content_field(h.name, f.name), f.width);
    }
    ctx.fields.intern(validity_field(h.name), 1);
  }
  for (const FieldDef& f : prog.metadata) ctx.fields.intern(f.name, f.width);
  for (const FieldDef& f : prog.registers) ctx.fields.intern(f.name, f.width);
  for (const ActionDef& a : prog.actions) {
    for (const FieldDef& p : a.params) {
      ctx.fields.intern(param_field(a.name, p.name), p.width);
    }
  }
  ctx.fields.intern(std::string(kIngressPort), kPortWidth);
  ctx.fields.intern(std::string(kEgressSpec), kPortWidth);
  ctx.fields.intern(std::string(kDropFlag), 1);
}

}  // namespace meissa::p4
