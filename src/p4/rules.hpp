// Table rule sets — the control-plane state against which a data plane is
// tested. Meissa takes the rule set as an input alongside the program
// (Fig. 2) and expands each table into per-entry CFG branches.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "p4/program.hpp"

namespace meissa::p4 {

// One key's match specification; interpretation depends on MatchKind:
//   exact   — value
//   ternary — value/mask
//   lpm     — value/prefix_len
//   range   — [lo, hi]
struct KeyMatch {
  uint64_t value = 0;
  uint64_t mask = 0;
  int prefix_len = 0;
  uint64_t lo = 0;
  uint64_t hi = 0;

  static KeyMatch exact(uint64_t v);
  static KeyMatch ternary(uint64_t v, uint64_t m);
  static KeyMatch lpm(uint64_t v, int prefix_len);
  static KeyMatch range(uint64_t lo, uint64_t hi);
  static KeyMatch wildcard();  // ternary with zero mask
};

struct TableEntry {
  std::string table;
  std::vector<KeyMatch> matches;  // one per table key
  std::string action;
  std::vector<uint64_t> args;  // one per action parameter
  int priority = 0;            // smaller value = higher priority (ternary)
};

struct RuleSet {
  std::string name;
  std::vector<TableEntry> entries;
  // Per-table override of the program's default action ("miss" behavior).
  struct DefaultAction {
    std::string action;
    std::vector<uint64_t> args;
  };
  std::unordered_map<std::string, DefaultAction> default_overrides;

  void add(TableEntry e) { entries.push_back(std::move(e)); }

  // Entries of one table in match order (see entry_rank below): longest
  // prefix first, then ascending priority number, then install order.
  // Exact-only tables keep pure insertion order (no rank dimensions apply).
  std::vector<const TableEntry*> ordered_entries(const TableDef& table) const;

  // Synthetic rule-set "lines": one line per entry plus one per override —
  // the measure behind the paper's "set-4 is more than 200,000 LOC".
  size_t loc() const {
    return entries.size() + default_overrides.size();
  }
};

// The explicit winner rule for entries that match the same key values:
//   1. longest prefix first — lexicographically over every lpm key, so a
//      /24 route always beats a /16 whatever order they were installed in;
//   2. then ascending priority number (the ternary/range tiebreak);
//   3. then install order (the caller's index; this function returns 0).
// Returns <0 when `a` outranks `b`, >0 when `b` outranks `a`, 0 on a full
// tie. Shared by RuleSet::ordered_entries (which fixes the symbolic
// engine's branch order) and sim::Device's concrete lookup, so the two
// semantics cannot diverge on overlapping entries.
int entry_rank(const std::vector<MatchKind>& key_kinds, const TableEntry& a,
               const TableEntry& b);

// Builds the match predicate of one key against `field_expr`.
ir::ExprRef key_predicate(ir::ExprArena& arena, ir::ExprRef field_expr,
                          MatchKind kind, const KeyMatch& m);

// Conjunction of all key predicates of `entry` for `table`.
ir::ExprRef entry_predicate(ir::Context& ctx, const Program& prog,
                            const TableDef& table, const TableEntry& entry,
                            const std::function<ir::ExprRef(std::string_view)>&
                                field_lookup);

// Conservative static overlap test: false only when the two entries can
// never match the same key values (used to avoid emitting useless
// higher-priority negations during table expansion).
bool may_overlap(const TableDef& table, const TableEntry& a,
                 const TableEntry& b);

// Validates every entry of `rules` against `prog` (tables exist, key
// arity/widths fit, actions permitted, argument arity/widths fit).
void validate_rules(const Program& prog, const RuleSet& rules);

}  // namespace meissa::p4
