// The data-plane program IR — Meissa's stand-in for the p4c IR (§4).
//
// A Program declares headers, metadata, registers, actions, match-action
// tables, and pipeline definitions (parser + control + deparser). A
// Topology instantiates pipeline definitions as pipeline *instances* laid
// out across one or more switches and wires them together with guarded
// edges (the traffic-manager policy of paper §2.2/Fig. 1).
//
// Expressions inside actions and control conditions are ordinary ir::Expr
// trees built against the shared ir::Context. Three field-name conventions
// give the IR its P4 semantics:
//
//   "hdr.<header>.<field>"          packet content; persists across pipes
//   "hdr.<header>.$valid"           placeholder validity; each pipeline
//                                   instance gets its own copy, qualified
//                                   as "hdr.<h>.$valid@<instance>"
//   "$arg.<action>.<param>"         action parameter; substituted with the
//                                   table entry's argument at expansion
//   "meta.*", "ig.*"                metadata / intrinsic metadata
//   "REG:<name>-POS:<i>"            register cell with constant index (§4)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ir/stmt.hpp"

namespace meissa::p4 {

// Intrinsic metadata present in every program.
inline constexpr std::string_view kIngressPort = "ig.port";    // 9 bits
inline constexpr std::string_view kEgressSpec = "ig.eg_spec";  // 9 bits
inline constexpr std::string_view kDropFlag = "ig.drop";       // 1 bit
inline constexpr int kPortWidth = 9;

// ---------------------------------------------------------------- Headers

struct FieldDef {
  std::string name;
  int width = 0;
  // Metadata only: the field is mirrored to the control plane (counters,
  // match markers) and the pipeline itself never reads it. Annotating it
  // keeps the lint unused-write detector quiet about the intentional
  // write-only use without widening the detector's blind spot.
  bool telemetry = false;
};

struct HeaderDef {
  std::string name;
  std::vector<FieldDef> fields;

  int bit_size() const;
  const FieldDef* find_field(std::string_view field) const;
};

// Content field name: "hdr.<header>.<field>".
std::string content_field(std::string_view header, std::string_view field);
// Placeholder validity name: "hdr.<header>.$valid".
std::string validity_field(std::string_view header);
// Instance-qualified validity name: "hdr.<header>.$valid@<instance>".
std::string validity_field_at(std::string_view header,
                              std::string_view instance);
// Action parameter field name: "$arg.<action>.<param>".
std::string param_field(std::string_view action, std::string_view param);
// Register cell field name (paper §4): "REG:<reg>-POS:<index>".
std::string register_field(std::string_view reg, uint64_t index);

// ---------------------------------------------------------------- Actions

enum class HashAlgo : uint8_t {
  kCrc16,
  kCrc32,
  kCsum16,  // ones-complement internet checksum over 16-bit words
  kIdentityXor,
};

// Computes a hash over concrete key values (also used by the simulator).
uint64_t compute_hash(HashAlgo algo, const std::vector<uint64_t>& keys,
                      const std::vector<int>& key_widths, int out_width);

struct ActionOp {
  enum class Kind : uint8_t {
    kAssign,     // dest <- expr (expr may reference $arg.* fields)
    kSetValid,   // make header valid (adds it to the packet)
    kSetInvalid  // make header invalid (removes it)
    ,
    kHash,  // dest <- hash(algo, keys...)
  };
  Kind kind = Kind::kAssign;
  std::string dest;             // kAssign/kHash: destination field name
  ir::ExprRef value = nullptr;  // kAssign
  std::string header;           // kSetValid/kSetInvalid
  HashAlgo algo = HashAlgo::kCrc16;      // kHash
  std::vector<std::string> hash_keys;    // kHash

  static ActionOp assign(std::string dest, ir::ExprRef value);
  static ActionOp set_valid(std::string header);
  static ActionOp set_invalid(std::string header);
  static ActionOp hash(std::string dest, HashAlgo algo,
                       std::vector<std::string> keys);
};

struct ActionDef {
  std::string name;
  std::vector<FieldDef> params;  // name + width; bound by table entries
  std::vector<ActionOp> ops;
};

// ----------------------------------------------------------------- Tables

enum class MatchKind : uint8_t { kExact, kTernary, kLpm, kRange };

struct TableKey {
  std::string field;  // full field name, e.g. "hdr.ipv4.dst_addr"
  MatchKind kind = MatchKind::kExact;
};

struct TableDef {
  std::string name;
  std::vector<TableKey> keys;
  std::vector<std::string> actions;  // permitted action names
  std::string default_action;        // applied on miss
  std::vector<uint64_t> default_args;
  size_t max_size = 1024;
};

// ---------------------------------------------------------------- Parsers

struct ParserTransition {
  uint64_t value = 0;
  uint64_t mask = 0;  // select matches when (field & mask) == (value & mask)
  std::string next;   // state name, "accept", or "reject"
};

struct ParserState {
  std::string name;
  std::vector<std::string> extracts;  // header names, in wire order
  std::string select_field;           // empty: unconditional default_next
  std::vector<ParserTransition> cases;
  std::string default_next = "accept";
};

struct Parser {
  std::string start = "start";
  std::vector<ParserState> states;

  const ParserState* find_state(std::string_view name) const;
};

// --------------------------------------------------------------- Controls

struct ControlStmt;

struct ControlBlock {
  std::vector<ControlStmt> stmts;
};

struct ControlStmt {
  enum class Kind : uint8_t { kApply, kIf, kOp };
  Kind kind = Kind::kOp;
  std::string table;            // kApply
  ir::ExprRef cond = nullptr;   // kIf
  ControlBlock then_block;      // kIf
  ControlBlock else_block;      // kIf
  ActionOp op;                  // kOp: a primitive op inlined in control

  static ControlStmt apply(std::string table);
  static ControlStmt if_else(ir::ExprRef cond, ControlBlock then_block,
                             ControlBlock else_block = {});
  static ControlStmt inline_op(ActionOp op);
};

// --------------------------------------------------------------- Deparser

struct ChecksumUpdate {
  std::string dest;                     // field receiving the checksum
  std::string guard_header;             // applied only when this is valid
  std::vector<std::string> sources;     // fields summed
  HashAlgo algo = HashAlgo::kCsum16;
};

struct Deparser {
  // Headers emitted (when valid) in wire order.
  std::vector<std::string> emit_order;
  std::vector<ChecksumUpdate> checksum_updates;
};

// --------------------------------------------------------------- Pipeline

struct PipelineDef {
  std::string name;
  Parser parser;
  ControlBlock control;
  Deparser deparser;
};

// ---------------------------------------------------------------- Program

struct Program {
  std::string name;
  std::vector<HeaderDef> headers;
  std::vector<FieldDef> metadata;   // full names ("meta.x"), zeroed at entry
  std::vector<FieldDef> registers;  // full names ("REG:r-POS:0")
  std::vector<ActionDef> actions;
  std::vector<TableDef> tables;
  std::vector<PipelineDef> pipelines;

  const HeaderDef* find_header(std::string_view name) const;
  const ActionDef* find_action(std::string_view name) const;
  const TableDef* find_table(std::string_view name) const;
  const PipelineDef* find_pipeline(std::string_view name) const;

  // Width of a full field name of any convention, or nullopt if undeclared.
  std::optional<int> field_width(std::string_view full_name) const;

  // Synthetic "lines of code" — what a textual P4 rendering would measure.
  // Used for the Table 1 inventory.
  size_t loc() const;
};

// --------------------------------------------------------------- Topology

struct PipeInstance {
  std::string name;      // unique instance name, e.g. "sw0.ig0"
  std::string pipeline;  // PipelineDef name
  int switch_id = 0;
};

// Directed, guarded edge between pipeline instances. The guard is evaluated
// on the state at `from`'s exit; the first matching edge is taken, and a
// packet matching no edge leaves the data plane (is emitted to the wire).
struct TopoEdge {
  std::string from;
  std::string to;
  ir::ExprRef guard = nullptr;  // nullptr: unconditional
};

struct EntryPoint {
  std::string instance;
  ir::ExprRef guard = nullptr;  // condition on ig.port etc.; nullptr: always
};

struct Topology {
  std::vector<PipeInstance> instances;
  std::vector<TopoEdge> edges;
  std::vector<EntryPoint> entries;

  const PipeInstance* find_instance(std::string_view name) const;
  std::vector<const TopoEdge*> edges_from(std::string_view name) const;
  int num_switches() const;

  // Instances in topological order; throws ValidationError on cycles
  // (recirculation must be pre-unrolled into distinct instances, §4).
  std::vector<std::string> topo_order() const;
};

// A complete unit under test: program + layout.
struct DataPlane {
  Program program;
  Topology topology;
};

// ------------------------------------------------------------ Builder API

// Fluent helpers for constructing programs in C++ (the app corpus uses
// this; the M4 DSL front-end produces the same structures from text).
class ProgramBuilder {
 public:
  ProgramBuilder(ir::Context& ctx, std::string name);

  ir::Context& ctx() { return ctx_; }

  ProgramBuilder& header(std::string name, std::vector<FieldDef> fields);
  ProgramBuilder& metadata_field(std::string full_name, int width,
                                 bool telemetry = false);
  ProgramBuilder& register_array(std::string name, int width, size_t cells);
  ProgramBuilder& action(ActionDef a);
  ProgramBuilder& table(TableDef t);
  ProgramBuilder& pipeline(PipelineDef p);

  // Expression helpers (intern fields against the shared context).
  ir::ExprRef var(std::string_view full_name);
  ir::ExprRef arg(std::string_view action, std::string_view param, int width);
  ir::ExprRef num(uint64_t v, int width) { return ctx_.arena.constant(v, width); }
  // `hdr.<h>.$valid == 1` placeholder predicate.
  ir::ExprRef is_valid(std::string_view header);

  Program build();  // validates and returns the program

 private:
  ir::Context& ctx_;
  Program prog_;
};

// Interns every declared field of `prog` into `ctx` (content fields,
// placeholder validity, metadata, registers, intrinsics) so subsequent
// lookups by name succeed. Instance-qualified validity fields are interned
// lazily by the CFG builder and the toolchain.
void intern_program_fields(const Program& prog, ir::Context& ctx);

// Validates the program against its own declarations; `ctx` must be the
// context the program's expressions were built against. Throws
// util::ValidationError on the first problem found.
void validate(const Program& prog, const ir::Context& ctx);
// Validates a topology against a program.
void validate(const DataPlane& dp, const ir::Context& ctx);

}  // namespace meissa::p4
