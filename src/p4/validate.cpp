// Program and topology validation: every cross-reference in a Program must
// resolve against its own declarations before the CFG builder or the
// toolchain touch it.
#include <unordered_set>

#include "p4/program.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::p4 {

namespace {

void require(bool cond, const std::string& what) {
  if (!cond) throw util::ValidationError(what);
}

void check_field_exists(const Program& prog, std::string_view full_name,
                        const std::string& where) {
  require(prog.field_width(full_name).has_value(),
          where + ": unknown field '" + std::string(full_name) + "'");
}

void check_expr_fields(const Program& prog, const ir::Context& ctx,
                       ir::ExprRef e, const std::string& where,
                       const ActionDef* enclosing_action) {
  if (e == nullptr) return;
  std::unordered_set<ir::FieldId> fs;
  ir::collect_fields(e, fs);
  for (ir::FieldId f : fs) {
    const std::string& name = ctx.fields.name(f);
    if (util::starts_with(name, "$arg.")) {
      require(enclosing_action != nullptr,
              where + ": action argument '" + name + "' outside an action");
      // Must belong to the enclosing action.
      std::string prefix = "$arg." + enclosing_action->name + ".";
      require(util::starts_with(name, prefix),
              where + ": argument '" + name + "' of a different action");
      continue;
    }
    check_field_exists(prog, name, where);
  }
}

void check_action_op(const Program& prog, const ir::Context& ctx,
                     const ActionOp& op, const std::string& where,
                     const ActionDef* enclosing) {
  switch (op.kind) {
    case ActionOp::Kind::kAssign:
      check_field_exists(prog, op.dest, where);
      require(op.value != nullptr, where + ": assignment without value");
      require(!op.value->is_bool(), where + ": boolean assigned to field");
      require(prog.field_width(op.dest) == op.value->width,
              where + ": width mismatch assigning to '" + op.dest + "'");
      check_expr_fields(prog, ctx, op.value, where, enclosing);
      break;
    case ActionOp::Kind::kSetValid:
    case ActionOp::Kind::kSetInvalid:
      require(prog.find_header(op.header) != nullptr,
              where + ": unknown header '" + op.header + "'");
      break;
    case ActionOp::Kind::kHash:
      check_field_exists(prog, op.dest, where);
      require(!op.hash_keys.empty(), where + ": hash with no keys");
      for (const std::string& k : op.hash_keys) {
        check_field_exists(prog, k, where);
      }
      break;
  }
}

void check_control(const Program& prog, const ir::Context& ctx,
                   const ControlBlock& block, const std::string& where) {
  for (const ControlStmt& s : block.stmts) {
    switch (s.kind) {
      case ControlStmt::Kind::kApply:
        require(prog.find_table(s.table) != nullptr,
                where + ": applies unknown table '" + s.table + "'");
        break;
      case ControlStmt::Kind::kIf:
        require(s.cond != nullptr && s.cond->is_bool(),
                where + ": if-condition must be boolean");
        check_expr_fields(prog, ctx, s.cond, where, nullptr);
        check_control(prog, ctx, s.then_block, where);
        check_control(prog, ctx, s.else_block, where);
        break;
      case ControlStmt::Kind::kOp:
        check_action_op(prog, ctx, s.op, where, nullptr);
        break;
    }
  }
}

void check_parser(const Program& prog, const Parser& parser,
                  const std::string& where) {
  require(!parser.states.empty(), where + ": parser has no states");
  std::unordered_set<std::string> names;
  for (const ParserState& s : parser.states) {
    require(names.insert(s.name).second,
            where + ": duplicate parser state '" + s.name + "'");
  }
  require(parser.find_state(parser.start) != nullptr,
          where + ": missing start state '" + parser.start + "'");
  auto check_next = [&](const std::string& next) {
    require(next == "accept" || next == "reject" ||
                parser.find_state(next) != nullptr,
            where + ": transition to unknown state '" + next + "'");
  };
  for (const ParserState& s : parser.states) {
    for (const std::string& h : s.extracts) {
      require(prog.find_header(h) != nullptr,
              where + ": extracts unknown header '" + h + "'");
    }
    if (!s.select_field.empty()) {
      check_field_exists(prog, s.select_field, where);
    } else {
      require(s.cases.empty(),
              where + ": select cases without a select field in '" + s.name +
                  "'");
    }
    for (const ParserTransition& t : s.cases) check_next(t.next);
    check_next(s.default_next);
  }
  // Acyclicity: DFS from start; the CFG requires bounded parse depth.
  std::unordered_set<std::string> visiting, done;
  auto dfs = [&](auto&& self, const std::string& name) -> void {
    if (name == "accept" || name == "reject" || done.count(name)) return;
    require(visiting.insert(name).second,
            where + ": parser loop through state '" + name + "'");
    const ParserState* s = parser.find_state(name);
    for (const ParserTransition& t : s->cases) self(self, t.next);
    self(self, s->default_next);
    visiting.erase(name);
    done.insert(name);
  };
  dfs(dfs, parser.start);
}

}  // namespace

void validate(const Program& prog, const ir::Context& ctx) {
  const ir::Context& scratch = ctx;  // resolves expression field ids
  std::unordered_set<std::string> names;
  for (const HeaderDef& h : prog.headers) {
    require(names.insert("hdr:" + h.name).second,
            "duplicate header '" + h.name + "'");
    require(!h.fields.empty(), "header '" + h.name + "' has no fields");
    require(h.bit_size() % 8 == 0,
            "header '" + h.name + "' is not byte-aligned");
    std::unordered_set<std::string> fnames;
    for (const FieldDef& f : h.fields) {
      util::check_width(f.width);
      require(fnames.insert(f.name).second, "duplicate field '" + f.name +
                                                "' in header '" + h.name + "'");
    }
  }
  for (const ActionDef& a : prog.actions) {
    require(names.insert("act:" + a.name).second,
            "duplicate action '" + a.name + "'");
    for (const ActionOp& op : a.ops) {
      check_action_op(prog, scratch, op, "action '" + a.name + "'", &a);
    }
  }
  for (const TableDef& t : prog.tables) {
    require(names.insert("tbl:" + t.name).second,
            "duplicate table '" + t.name + "'");
    require(!t.keys.empty(), "table '" + t.name + "' has no keys");
    for (const TableKey& k : t.keys) {
      check_field_exists(prog, k.field, "table '" + t.name + "'");
    }
    require(!t.actions.empty(), "table '" + t.name + "' permits no actions");
    for (const std::string& a : t.actions) {
      require(prog.find_action(a) != nullptr,
              "table '" + t.name + "' permits unknown action '" + a + "'");
    }
    const ActionDef* def = prog.find_action(t.default_action);
    require(def != nullptr, "table '" + t.name + "' has unknown default '" +
                                t.default_action + "'");
    require(def->params.size() == t.default_args.size(),
            "table '" + t.name + "': default action argument arity");
  }
  require(!prog.pipelines.empty(), "program has no pipelines");
  for (const PipelineDef& p : prog.pipelines) {
    require(names.insert("ppl:" + p.name).second,
            "duplicate pipeline '" + p.name + "'");
    const std::string where = "pipeline '" + p.name + "'";
    check_parser(prog, p.parser, where);
    check_control(prog, scratch, p.control, where);
    for (const std::string& h : p.deparser.emit_order) {
      require(prog.find_header(h) != nullptr,
              where + ": deparser emits unknown header '" + h + "'");
    }
    for (const ChecksumUpdate& c : p.deparser.checksum_updates) {
      check_field_exists(prog, c.dest, where);
      require(prog.find_header(c.guard_header) != nullptr,
              where + ": checksum guarded by unknown header '" +
                  c.guard_header + "'");
      for (const std::string& s : c.sources) {
        check_field_exists(prog, s, where);
      }
    }
  }
}

void validate(const DataPlane& dp, const ir::Context& ctx) {
  validate(dp.program, ctx);
  const Topology& topo = dp.topology;
  require(!topo.instances.empty(), "topology has no pipeline instances");
  std::unordered_set<std::string> names;
  for (const PipeInstance& i : topo.instances) {
    require(names.insert(i.name).second,
            "duplicate pipeline instance '" + i.name + "'");
    require(dp.program.find_pipeline(i.pipeline) != nullptr,
            "instance '" + i.name + "' uses unknown pipeline '" + i.pipeline +
                "'");
    require(i.switch_id >= 0, "negative switch id");
  }
  for (const TopoEdge& e : topo.edges) {
    require(topo.find_instance(e.from) != nullptr,
            "edge from unknown instance '" + e.from + "'");
    require(topo.find_instance(e.to) != nullptr,
            "edge to unknown instance '" + e.to + "'");
    require(e.guard == nullptr || e.guard->is_bool(),
            "edge guard must be boolean");
  }
  require(!topo.entries.empty(), "topology has no entry points");
  for (const EntryPoint& e : topo.entries) {
    require(topo.find_instance(e.instance) != nullptr,
            "entry at unknown instance '" + e.instance + "'");
    require(e.guard == nullptr || e.guard->is_bool(),
            "entry guard must be boolean");
  }
  topo.topo_order();  // throws on cycles
}

}  // namespace meissa::p4
