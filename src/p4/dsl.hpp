// The "M4" textual front-end: a compact P4-like language for writing data
// planes, topologies and rule sets as text (the role p4c's source syntax
// plays for the real system). The grammar (informally):
//
//   program <name> ;
//   header <h> { <field>:<width>; ... }
//   metadata <full.name>:<width> ;
//   register <name>:<width>[<cells>] ;
//   action <a>(<param>:<w>, ...) { <stmt>; ... }
//     stmt := <field> = <expr>
//           | <field> = crc16(<field>, ...) | crc32(...) | csum16(...)
//           | set_valid(<header>) | set_invalid(<header>)
//   table <t> { key <field>:<exact|ternary|lpm|range>, ...;
//               actions <a>, ...; default <a>(<int>, ...); }
//   pipeline <p> {
//     parser { state <s> { extract <h>, ...;
//                          select <field> { <int>[/<mask>] -> <s'>; ...
//                                           default -> <s'|accept|reject>; }
//                        | goto <s'|accept|reject>; } ... }
//     control { apply <t>; if (<expr>) { ... } [else { ... }] <stmt>; ... }
//     deparser { emit <h>, ...; [checksum <field> over <h> (<field>,...);] }
//   }
//   topology { instance <name> = <pipeline> @ <switch#>;
//              entry <name> [when <expr>];
//              edge <from> -> <to> [when <expr>]; }
//   rules { <table>: <match>, ... [prio <n>] -> <action>(<int>, ...); ... }
//     match := exact <int> | ternary <int>/<int> | lpm <int>/<len>
//            | range <int>..<int> | any
//
// Expressions support || && ! == != < <= > >= + - & | ^ << >> and
// parentheses; `valid(<header>)` abbreviates `hdr.<h>.$valid == 1`.
#pragma once

#include <string_view>

#include "p4/rules.hpp"

namespace meissa::p4 {

struct ParsedUnit {
  DataPlane dp;
  RuleSet rules;
};

// Parses a full M4 unit (program + topology + optional rules). Throws
// util::ParseError with a line number on malformed input and
// util::ValidationError on semantic problems.
ParsedUnit parse_m4(std::string_view source, ir::Context& ctx);

}  // namespace meissa::p4
