#include <chrono>

#include "baselines/baseline.hpp"

namespace meissa::baselines {

BaselineResult run_p4pktgen(ir::Context& ctx, const p4::DataPlane& dp,
                            const p4::RuleSet& rules, sim::Device* device,
                            const P4pktgenOptions& opts) {
  BaselineResult r;
  if (dp.topology.instances.size() > 1) {
    r.supported = false;
    r.unsupported_reason = "multi-pipeline programs not supported";
    return r;
  }
  if (dp.topology.num_switches() > 1) {
    r.supported = false;
    r.unsupported_reason = "multi-switch programs not supported";
    return r;
  }
  if (!dp.program.registers.empty()) {
    r.supported = false;
    r.unsupported_reason = "production features (registers) not supported";
    return r;
  }

  auto t0 = std::chrono::steady_clock::now();
  // p4pktgen "does not test table rules": it explores default behaviour
  // only, so the provided rule set is ignored.
  p4::RuleSet no_rules;
  no_rules.name = "p4pktgen-default";
  (void)rules;
  driver::GenOptions gen;
  gen.code_summary = false;
  gen.incremental = false;  // fresh solver per satisfiability query
  gen.static_pruning = false;  // baseline: every query reaches the solver
  gen.build.elide_disjoint_negations = false;  // standard encoding
  gen.time_budget_seconds = opts.time_budget_seconds;
  if (opts.action_cover) {
    gen.build.table_mode = cfg::BuildOptions::TableMode::kActionCover;
  }
  driver::Generator generator(ctx, dp, no_rules, gen);
  std::vector<sym::TestCaseTemplate> templates = generator.generate();
  r.templates = templates.size();
  r.smt_checks = generator.stats().smt_checks;
  r.timed_out = generator.stats().timed_out;
  // Static findings (invalid-header reads) count as detections.
  r.failures += generator.stats().diagnostics;

  if (device != nullptr && !r.timed_out) {
    driver::Sender sender(ctx, dp, generator.graph(), /*seed=*/7);
    for (const sym::TestCaseTemplate& t : templates) {
      auto tc = sender.concretize(t, generator.engine());
      if (!tc) continue;
      device->set_registers(tc->registers);
      sim::DeviceOutput out = device->inject(tc->input);
      // No spec: only model-vs-device comparison.
      driver::CheckResult cr =
          driver::check_case(ctx, dp.program, *tc, out, {});
      ++r.cases;
      if (!cr.model_problems.empty()) ++r.failures;
    }
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace meissa::baselines
