#include <chrono>

#include "baselines/baseline.hpp"

namespace meissa::baselines {

BaselineResult run_pta(const std::vector<PtaCase>& cases,
                       bool program_is_p4_14, sim::Device* device) {
  BaselineResult r;
  if (!program_is_p4_14) {
    r.supported = false;
    r.unsupported_reason = "PTA supports P4-14 programs only";
    return r;
  }
  if (cases.empty()) {
    r.supported = false;
    r.unsupported_reason = "no handwritten unit tests provided";
    return r;
  }
  auto t0 = std::chrono::steady_clock::now();
  for (const PtaCase& c : cases) {
    sim::DeviceOutput out = device->inject(c.input);
    ++r.cases;
    bool pass;
    if (c.expect_drop) {
      pass = out.dropped;
    } else {
      pass = !out.dropped && out.port == c.expect_port &&
             out.bytes == c.expect_bytes;
    }
    if (!pass) ++r.failures;
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace meissa::baselines
