// Baseline reimplementations of the four systems the paper compares
// against (§5.1): p4pktgen, Gauntlet (model-based mode), Aquila, and PTA.
//
// Each baseline is faithful to the *algorithmic shape* the paper
// attributes to it (what it explores, what it checks, which features it
// supports), so the evaluation reproduces who wins and why rather than
// absolute numbers. The feature gates below produce the paper's
// "no-support" marks; the time budgets produce its timeout marks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "driver/tester.hpp"

namespace meissa::baselines {

struct BaselineResult {
  bool supported = true;
  std::string unsupported_reason;
  bool timed_out = false;
  double seconds = 0;
  uint64_t templates = 0;
  uint64_t smt_checks = 0;
  // Testing baselines: cases run / failed on the device. Verification
  // baselines: violations found.
  uint64_t cases = 0;
  uint64_t failures = 0;
  bool bug_detected() const noexcept {
    return supported && !timed_out && failures > 0;
  }
};

// ---------------------------------------------------------------- p4pktgen
//
// Symbolic-execution test generation for single-pipeline programs. Per the
// paper (§8): "It also does not test table rules and other production
// functionalities" — tables are explored with default actions only, and
// the solver is re-instantiated per query (no incremental reuse). No code
// summary. Multi-pipeline/multi-switch programs and custom rule sets are
// unsupported.
struct P4pktgenOptions {
  double time_budget_seconds = 3600;
  // Action-coverage mode (the tool's generation algorithm: one case per
  // table action with synthesized entries) vs default-behaviour testing
  // (no entries installed; used when driving a device it cannot program).
  bool action_cover = false;
};
BaselineResult run_p4pktgen(ir::Context& ctx, const p4::DataPlane& dp,
                            const p4::RuleSet& rules, sim::Device* device,
                            const P4pktgenOptions& opts = {});

// ---------------------------------------------------------------- Gauntlet
//
// Model-based testing mode, modified per §5.2 "to traverse all possible
// table rules to achieve full coverage": whole-program path enumeration
// with rule expansion but no early termination (each complete path is
// checked once at its leaf) and no code summary. Only single-pipeline
// programs are supported (its translation validation has no notion of a
// traffic manager). Detects compiled-vs-source divergence on a device; it
// has no specification, so intent (code) bugs are invisible to it.
struct GauntletOptions {
  double time_budget_seconds = 3600;
};
BaselineResult run_gauntlet(ir::Context& ctx, const p4::DataPlane& dp,
                            const p4::RuleSet& rules, sim::Device* device,
                            const GauntletOptions& opts = {});

// ------------------------------------------------------------------ Aquila
//
// Production-scale *verification*: enumerates valid paths symbolically
// (early termination, incremental solving, no code summary) and discharges
// every applicable intent on every path with an SMT validity query
// (path-condition ∧ assumes ∧ ¬expectation). Never executes the device, so
// non-code bugs are out of reach; checksum expectations are skipped
// ("verifying checksum is not well supported by SMT solvers", §6).
struct AquilaOptions {
  double time_budget_seconds = 3600;
};
BaselineResult run_aquila(ir::Context& ctx, const p4::DataPlane& dp,
                          const p4::RuleSet& rules,
                          const std::vector<spec::Intent>& intents,
                          const AquilaOptions& opts = {});

// --------------------------------------------------------------------- PTA
//
// Handwritten unit tests compiled into sender/checker programs. Supports
// only P4-14-era feature sets (per the paper, Table 2: "it does not
// support P4-16 in which bug 7–16 are written"); the caller marks the
// program's dialect. Runs exactly the cases it is given.
struct PtaCase {
  sim::DeviceInput input;
  bool expect_drop = false;
  uint64_t expect_port = 0;
  std::vector<uint8_t> expect_bytes;
};
BaselineResult run_pta(const std::vector<PtaCase>& cases, bool program_is_p4_14,
                       sim::Device* device);

}  // namespace meissa::baselines
