#include <chrono>

#include "baselines/baseline.hpp"
#include "sym/template.hpp"
#include "util/clock.hpp"
#include "util/strings.hpp"

namespace meissa::baselines {

namespace {

// Rewrites an intent expectation into path terms: "in.X" becomes the input
// symbol X, "out.X" becomes the path's final symbolic value of X.
ir::ExprRef expectation_to_path_terms(
    ir::ExprRef e, ir::Context& ctx,
    const std::unordered_map<ir::FieldId, ir::ExprRef>& final_values) {
  return ir::substitute(e, ctx.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
    const std::string& name = ctx.fields.name(f);
    auto value_of = [&](std::string_view raw_name) -> ir::ExprRef {
      std::string raw(raw_name);
      if (raw == "$port") raw = std::string(p4::kEgressSpec);
      ir::FieldId rf = ctx.fields.intern(raw, w);
      auto it = final_values.find(rf);
      return it != final_values.end() ? it->second : ctx.var(rf);
    };
    if (util::starts_with(name, "in.")) {
      std::string raw(name.substr(3));
      if (raw == "$port") raw = std::string(p4::kIngressPort);
      return ctx.field_var(raw, w);
    }
    if (util::starts_with(name, "out.")) {
      return value_of(name.substr(4));
    }
    return nullptr;
  });
}

}  // namespace

BaselineResult run_aquila(ir::Context& ctx, const p4::DataPlane& dp,
                          const p4::RuleSet& rules,
                          const std::vector<spec::Intent>& intents,
                          const AquilaOptions& opts) {
  BaselineResult r;
  auto t0 = std::chrono::steady_clock::now();
  auto deadline = util::steady_deadline_after(t0, opts.time_budget_seconds);

  cfg::BuildOptions bopts;
  bopts.elide_disjoint_negations = false;  // standard encoding
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx, bopts);

  sym::EngineOptions eopts;
  eopts.time_budget_seconds = opts.time_budget_seconds;
  // Aquila re-encodes the whole program monolithically per query rather
  // than reusing incremental solver state across the DFS.
  eopts.incremental = false;
  eopts.static_pruning = false;  // baseline: every query reaches the solver
  sym::Engine eng(ctx, g, eopts);

  auto solver = [&ctx]() { return smt::make_bv_solver(ctx); };

  // Headers each intent's assumes reference ("in.hdr.<h>.*"): the intent
  // only applies to paths whose entry parser produced those headers.
  std::vector<std::vector<std::string>> assumed_headers(intents.size());
  for (size_t i = 0; i < intents.size(); ++i) {
    std::unordered_set<ir::FieldId> fs;
    for (ir::ExprRef a : intents[i].assumes) ir::collect_fields(a, fs);
    for (ir::FieldId f : fs) {
      const std::string& name = ctx.fields.name(f);
      if (util::starts_with(name, "in.hdr.")) {
        size_t dot = name.find('.', 7);
        if (dot != std::string::npos) {
          assumed_headers[i].push_back(name.substr(7, dot - 7));
        }
      }
    }
  }

  eng.run([&](const sym::PathResult& pr) {
    ++r.templates;
    if (std::chrono::steady_clock::now() > deadline) {
      r.timed_out = true;
      return;
    }
    // Header-validity safety (p4v/bf4-style checks): reading a field of an
    // invalid header is itself a reportable defect.
    r.failures += sym::find_invalid_header_reads(ctx, g, pr.path).size();

    // Headers made valid somewhere in the path's entry instance: the
    // conservative "this input can carry h" test for intent applicability.
    int entry_inst = -1;
    for (cfg::NodeId id : pr.path) {
      if (g.node(id).instance >= 0) {
        entry_inst = g.node(id).instance;
        break;
      }
    }
    std::unordered_set<std::string> available;
    if (entry_inst >= 0) {
      const cfg::InstanceInfo& inst =
          g.instances()[static_cast<size_t>(entry_inst)];
      for (cfg::NodeId id : pr.path) {
        const cfg::Node& n = g.node(id);
        if (n.instance != entry_inst || n.is_hash ||
            n.stmt.kind != ir::StmtKind::kAssign ||
            !n.stmt.expr->is_const() || n.stmt.expr->value != 1) {
          continue;
        }
        for (const auto& [h, vf] : inst.validity) {
          if (vf == n.stmt.target) available.insert(h);
        }
      }
    }

    for (size_t ii = 0; ii < intents.size(); ++ii) {
      const spec::Intent& intent = intents[ii];
      bool headers_ok = true;
      for (const std::string& h : assumed_headers[ii]) {
        headers_ok &= available.count(h) != 0;
      }
      if (!headers_ok) continue;
      // Applicability: path condition ∧ assumes satisfiable.
      auto s = solver();
      for (ir::ExprRef c : pr.conds) s->add(c);
      for (ir::ExprRef a : intent.assumes) {
        s->add(spec::assume_to_precondition(a, ctx));
      }
      ++r.smt_checks;
      if (s->check() != smt::CheckResult::kSat) continue;

      for (const spec::Expectation& e : intent.expects) {
        ++r.cases;
        switch (e.kind) {
          case spec::Expectation::Kind::kDropped:
            if (pr.exit == cfg::ExitKind::kEmit) ++r.failures;
            break;
          case spec::Expectation::Kind::kDelivered:
            if (pr.exit == cfg::ExitKind::kDrop) ++r.failures;
            break;
          case spec::Expectation::Kind::kBool: {
            if (pr.exit != cfg::ExitKind::kEmit) break;  // delivery-gated
            ir::ExprRef in_terms =
                expectation_to_path_terms(e.expr, ctx, pr.values);
            // Validity query: does some input drive this path while
            // violating the expectation?
            s->add(ctx.arena.bnot(in_terms));
            ++r.smt_checks;
            if (s->check() == smt::CheckResult::kSat) ++r.failures;
            break;
          }
          case spec::Expectation::Kind::kHeaderPresent:
          case spec::Expectation::Kind::kHeaderAbsent: {
            if (pr.exit != cfg::ExitKind::kEmit || pr.emit_instance < 0) {
              break;  // delivery-gated
            }
            const cfg::InstanceInfo& inst =
                g.instances()[static_cast<size_t>(pr.emit_instance)];
            ir::FieldId vf = inst.validity.at(e.header);
            auto it = pr.values.find(vf);
            bool valid = it != pr.values.end() && it->second->is_const() &&
                         it->second->value == 1;
            // A header reaches the wire only if valid AND emitted by the
            // deparser (catches wrong-deparser-emit code bugs, Table 2 #5).
            bool emitted = false;
            for (const std::string& h : inst.emit_order) emitted |= h == e.header;
            bool present = valid && emitted;
            bool want = e.kind == spec::Expectation::Kind::kHeaderPresent;
            if (present != want) ++r.failures;
            break;
          }
          case spec::Expectation::Kind::kChecksum:
            // Out of scope for SMT-based verification (paper §6: p4v/Aquila
            // "could not detect this bug, because verifying checksum is not
            // well supported by SMT solvers").
            break;
        }
      }
    }
  });
  if (eng.stats().timed_out) r.timed_out = true;
  r.smt_checks += eng.stats().solver.checks;
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace meissa::baselines
