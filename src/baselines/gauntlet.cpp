#include <chrono>

#include "baselines/baseline.hpp"

namespace meissa::baselines {

BaselineResult run_gauntlet(ir::Context& ctx, const p4::DataPlane& dp,
                            const p4::RuleSet& rules, sim::Device* device,
                            const GauntletOptions& opts) {
  BaselineResult r;
  if (dp.topology.instances.size() > 1 || dp.topology.num_switches() > 1) {
    r.supported = false;
    r.unsupported_reason =
        "model-based mode translates single-pipeline programs only";
    return r;
  }
  if (!dp.program.registers.empty()) {
    r.supported = false;
    r.unsupported_reason =
        "production features (registers/stateful externs) not translated";
    return r;
  }

  auto t0 = std::chrono::steady_clock::now();
  driver::GenOptions gen;
  gen.code_summary = false;
  gen.early_termination = false;  // every complete path checked at the leaf
  gen.static_pruning = false;  // baseline: every query reaches the solver
  gen.build.elide_disjoint_negations = false;  // standard encoding
  gen.time_budget_seconds = opts.time_budget_seconds;
  driver::Generator generator(ctx, dp, rules, gen);
  std::vector<sym::TestCaseTemplate> templates = generator.generate();
  r.templates = templates.size();
  r.smt_checks = generator.stats().smt_checks;
  r.timed_out = generator.stats().timed_out;
  // Static findings (invalid-header reads) count as detections.
  r.failures += generator.stats().diagnostics;

  if (device != nullptr && !r.timed_out) {
    driver::Sender sender(ctx, dp, generator.graph(), /*seed=*/11);
    for (const sym::TestCaseTemplate& t : templates) {
      auto tc = sender.concretize(t, generator.engine());
      if (!tc) continue;
      device->set_registers(tc->registers);
      sim::DeviceOutput out = device->inject(tc->input);
      driver::CheckResult cr =
          driver::check_case(ctx, dp.program, *tc, out, {});
      ++r.cases;
      // Compiled-vs-source differential only (no specification).
      if (!cr.model_problems.empty()) ++r.failures;
    }
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

}  // namespace meissa::baselines
