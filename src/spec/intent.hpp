// LPI-style intents — Meissa's specification input (paper Fig. 2; LPI is
// the declarative intent language of Aquila that Meissa reuses).
//
// An intent constrains which inputs it covers (`assume`, over `in.*`
// fields) and states what must hold of the observed behaviour (`expect`):
// field relations between input and output packet, delivery/drop, header
// presence, and checksum correctness (the paper's deployment workflow in
// §6 — base constraints plus test-case-specific constraints plus expected
// end-to-end behaviour).
//
// Namespacing: intents intern fields "in.<full-name>" and "out.<full-name>"
// (e.g. "in.hdr.ipv4.dst", "out.hdr.tcp.dport") plus the specials
// "in.$port" / "out.$port". The checker evaluates expects concretely
// against a captured (input, output) packet pair.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/stmt.hpp"
#include "p4/program.hpp"
#include "packet/packet.hpp"

namespace meissa::spec {

struct Expectation {
  enum class Kind : uint8_t {
    kDelivered,      // packet must come out (not dropped)
    kDropped,        // packet must be dropped
    kBool,           // boolean expression over in.*/out.* fields
    kHeaderPresent,  // output contains this header
    kHeaderAbsent,   // output does not contain this header
    kChecksum,       // out.<dest> equals algo over the source fields
  };
  Kind kind = Kind::kBool;
  ir::ExprRef expr = nullptr;  // kBool
  std::string header;          // kHeaderPresent/kHeaderAbsent
  // kChecksum: destination and sources name output-packet fields
  // ("hdr.innerTcp.csum"), recomputed over the captured output.
  std::string csum_dest;
  std::vector<std::string> csum_sources;
  p4::HashAlgo csum_algo = p4::HashAlgo::kCsum16;
  std::string describe(const ir::FieldTable& fields) const;
};

struct Intent {
  std::string name;
  std::vector<ir::ExprRef> assumes;  // over in.* fields only
  std::vector<Expectation> expects;
};

// Helper for building intents in C++ against a program's declarations.
class IntentBuilder {
 public:
  IntentBuilder(ir::Context& ctx, const p4::Program& prog, std::string name);

  // Input/output field variables ("in."/"out." + full field name).
  ir::ExprRef in(std::string_view full_name);
  ir::ExprRef out(std::string_view full_name);
  ir::ExprRef in_port();
  ir::ExprRef out_port();
  ir::ExprRef num(uint64_t v, int width);

  IntentBuilder& assume(ir::ExprRef cond);
  IntentBuilder& expect(ir::ExprRef cond);
  IntentBuilder& expect_delivered();
  IntentBuilder& expect_dropped();
  IntentBuilder& expect_header(std::string header, bool present);
  IntentBuilder& expect_checksum(std::string dest,
                                 std::vector<std::string> sources,
                                 p4::HashAlgo algo = p4::HashAlgo::kCsum16);

  Intent build() { return std::move(intent_); }

 private:
  ir::Context& ctx_;
  const p4::Program& prog_;
  Intent intent_;
};

// Rewrites an `assume` over in.* fields into a predicate over raw program
// fields, usable as an engine precondition.
ir::ExprRef assume_to_precondition(ir::ExprRef assume, ir::Context& ctx);

// Concrete checking ---------------------------------------------------------

struct Observation {
  const p4::Program* prog = nullptr;
  packet::Packet input;
  uint64_t in_port = 0;
  bool delivered = false;  // false: dropped
  packet::Packet output;   // meaningful when delivered
  uint64_t out_port = 0;
};

// Is the intent applicable to this input? (all assumes hold)
bool applicable(const Intent& intent, const Observation& obs,
                ir::Context& ctx);

// Checks every expectation; returns failure descriptions (empty = pass).
std::vector<std::string> check(const Intent& intent, const Observation& obs,
                               ir::Context& ctx);

}  // namespace meissa::spec
