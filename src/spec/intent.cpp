#include "spec/intent.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::spec {

std::string Expectation::describe(const ir::FieldTable& fields) const {
  switch (kind) {
    case Kind::kDelivered: return "expect delivered";
    case Kind::kDropped: return "expect dropped";
    case Kind::kBool: return "expect " + ir::to_string(expr, fields);
    case Kind::kHeaderPresent: return "expect header " + header + " present";
    case Kind::kHeaderAbsent: return "expect header " + header + " absent";
    case Kind::kChecksum: return "expect checksum " + csum_dest;
  }
  return "?";
}

IntentBuilder::IntentBuilder(ir::Context& ctx, const p4::Program& prog,
                             std::string name)
    : ctx_(ctx), prog_(prog) {
  intent_.name = std::move(name);
}

ir::ExprRef IntentBuilder::in(std::string_view full_name) {
  std::optional<int> w = prog_.field_width(full_name);
  if (!w) {
    throw util::ValidationError("intent: unknown field '" +
                                std::string(full_name) + "'");
  }
  return ctx_.field_var("in." + std::string(full_name), *w);
}

ir::ExprRef IntentBuilder::out(std::string_view full_name) {
  std::optional<int> w = prog_.field_width(full_name);
  if (!w) {
    throw util::ValidationError("intent: unknown field '" +
                                std::string(full_name) + "'");
  }
  return ctx_.field_var("out." + std::string(full_name), *w);
}

ir::ExprRef IntentBuilder::in_port() {
  return ctx_.field_var("in.$port", p4::kPortWidth);
}

ir::ExprRef IntentBuilder::out_port() {
  return ctx_.field_var("out.$port", p4::kPortWidth);
}

ir::ExprRef IntentBuilder::num(uint64_t v, int width) {
  return ctx_.arena.constant(v, width);
}

IntentBuilder& IntentBuilder::assume(ir::ExprRef cond) {
  util::check(cond != nullptr && cond->is_bool(), "assume must be boolean");
  intent_.assumes.push_back(cond);
  return *this;
}

IntentBuilder& IntentBuilder::expect(ir::ExprRef cond) {
  util::check(cond != nullptr && cond->is_bool(), "expect must be boolean");
  Expectation e;
  e.kind = Expectation::Kind::kBool;
  e.expr = cond;
  intent_.expects.push_back(std::move(e));
  return *this;
}

IntentBuilder& IntentBuilder::expect_delivered() {
  Expectation e;
  e.kind = Expectation::Kind::kDelivered;
  intent_.expects.push_back(std::move(e));
  return *this;
}

IntentBuilder& IntentBuilder::expect_dropped() {
  Expectation e;
  e.kind = Expectation::Kind::kDropped;
  intent_.expects.push_back(std::move(e));
  return *this;
}

IntentBuilder& IntentBuilder::expect_header(std::string header, bool present) {
  util::check(prog_.find_header(header) != nullptr,
              "intent: unknown header");
  Expectation e;
  e.kind = present ? Expectation::Kind::kHeaderPresent
                   : Expectation::Kind::kHeaderAbsent;
  e.header = std::move(header);
  intent_.expects.push_back(std::move(e));
  return *this;
}

IntentBuilder& IntentBuilder::expect_checksum(std::string dest,
                                              std::vector<std::string> sources,
                                              p4::HashAlgo algo) {
  Expectation e;
  e.kind = Expectation::Kind::kChecksum;
  e.csum_dest = std::move(dest);
  e.csum_sources = std::move(sources);
  e.csum_algo = algo;
  intent_.expects.push_back(std::move(e));
  return *this;
}

ir::ExprRef assume_to_precondition(ir::ExprRef assume, ir::Context& ctx) {
  return ir::substitute(assume, ctx.arena, [&](ir::FieldId f, int w) -> ir::ExprRef {
    const std::string& name = ctx.fields.name(f);
    if (util::starts_with(name, "in.")) {
      std::string raw(name.substr(3));
      if (raw == "$port") raw = std::string(p4::kIngressPort);
      return ctx.field_var(raw, w);
    }
    return nullptr;
  });
}

namespace {

// Builds the concrete evaluation state for intent expressions: in.*/out.*
// fields from the observed packets.
ir::ConcreteState observation_state(const Observation& obs, ir::Context& ctx) {
  ir::ConcreteState s;
  auto load = [&](const packet::Packet& pkt, const std::string& prefix) {
    for (const packet::HeaderValues& h : pkt.headers) {
      const p4::HeaderDef* def = obs.prog->find_header(h.header);
      for (size_t i = 0; i < def->fields.size(); ++i) {
        std::string name =
            prefix + p4::content_field(h.header, def->fields[i].name);
        s[ctx.fields.intern(name, def->fields[i].width)] = h.values[i];
      }
    }
  };
  load(obs.input, "in.");
  if (obs.delivered) load(obs.output, "out.");
  s[ctx.fields.intern("in.$port", p4::kPortWidth)] =
      util::truncate(obs.in_port, p4::kPortWidth);
  if (obs.delivered) {
    s[ctx.fields.intern("out.$port", p4::kPortWidth)] =
        util::truncate(obs.out_port, p4::kPortWidth);
  }
  return s;
}

}  // namespace

bool applicable(const Intent& intent, const Observation& obs,
                ir::Context& ctx) {
  ir::ConcreteState s = observation_state(obs, ctx);
  for (ir::ExprRef a : intent.assumes) {
    auto v = ir::eval(a, s);
    // An assume over a field absent from the input (e.g. a header the
    // packet does not carry) does not apply.
    if (!v || *v == 0) return false;
  }
  return true;
}

std::vector<std::string> check(const Intent& intent, const Observation& obs,
                               ir::Context& ctx) {
  std::vector<std::string> failures;
  ir::ConcreteState s = observation_state(obs, ctx);
  for (const Expectation& e : intent.expects) {
    switch (e.kind) {
      case Expectation::Kind::kDelivered:
        if (!obs.delivered) failures.push_back("packet was dropped");
        break;
      case Expectation::Kind::kDropped:
        if (obs.delivered) failures.push_back("packet was not dropped");
        break;
      case Expectation::Kind::kBool: {
        // Output-relating expectations are implicitly conditioned on
        // delivery; a dropped packet is judged by kDropped/kDelivered.
        if (!obs.delivered) break;
        auto v = ir::eval(e.expr, s);
        if (!v) {
          failures.push_back("cannot evaluate: " +
                             e.describe(ctx.fields) +
                             " (field missing from packets)");
        } else if (*v == 0) {
          failures.push_back("violated: " + e.describe(ctx.fields));
        }
        break;
      }
      case Expectation::Kind::kHeaderPresent:
        if (obs.delivered && obs.output.find(e.header) == nullptr) {
          failures.push_back("missing header " + e.header);
        }
        break;
      case Expectation::Kind::kHeaderAbsent:
        if (obs.delivered && obs.output.find(e.header) != nullptr) {
          failures.push_back("unexpected header " + e.header);
        }
        break;
      case Expectation::Kind::kChecksum: {
        if (!obs.delivered) {
          failures.push_back("packet was dropped; checksum unverifiable");
          break;
        }
        std::vector<uint64_t> kv;
        std::vector<int> kw;
        bool ok = true;
        for (const std::string& src : e.csum_sources) {
          std::optional<int> w = obs.prog->field_width(src);
          ir::FieldId f = ctx.fields.intern("out." + src, *w);
          auto it = s.find(f);
          if (it == s.end()) {
            failures.push_back("checksum source '" + src +
                               "' missing from output");
            ok = false;
            break;
          }
          kv.push_back(it->second);
          kw.push_back(*w);
        }
        if (!ok) break;
        std::optional<int> dw = obs.prog->field_width(e.csum_dest);
        ir::FieldId df = ctx.fields.intern("out." + e.csum_dest, *dw);
        auto it = s.find(df);
        if (it == s.end()) {
          failures.push_back("checksum field '" + e.csum_dest +
                             "' missing from output");
          break;
        }
        uint64_t want = p4::compute_hash(e.csum_algo, kv, kw, *dw);
        if (it->second != want) {
          failures.push_back("checksum error in " + e.csum_dest +
                             ": expected " + util::hex(want) + ", got " +
                             util::hex(it->second));
        }
        break;
      }
    }
  }
  return failures;
}

}  // namespace meissa::spec
