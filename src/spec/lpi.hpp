// Textual LPI intents — the operator-facing specification syntax:
//
//   intent <name> {
//     assume <boolean expression over in.* fields>;
//     expect delivered;                  // or: expect dropped;
//     expect header <h> present;         // or: absent
//     expect checksum <field> over (<field>, ...);
//     expect <boolean expression over in.*/out.* fields>;
//   }
//   ... more intents ...
//
// Field references use the program's full field names prefixed with `in.`
// or `out.` (e.g. in.hdr.ipv4.dst, out.hdr.tcp.dport, in.$port).
// Expressions support the same operators as the M4 DSL.
#pragma once

#include <string_view>
#include <vector>

#include "spec/intent.hpp"

namespace meissa::spec {

// Parses a sequence of intents against `prog`'s declarations. Throws
// util::ParseError / util::ValidationError on bad input.
std::vector<Intent> parse_lpi(std::string_view source, ir::Context& ctx,
                              const p4::Program& prog);

}  // namespace meissa::spec
