#include "spec/lpi.hpp"

#include <cctype>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace meissa::spec {

namespace {

// A small self-contained lexer (shares the M4 token conventions).
struct Token {
  enum class Kind : uint8_t { kIdent, kNumber, kPunct, kEnd } kind = Kind::kEnd;
  std::string text;
  uint64_t number = 0;
  int line = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }
  const Token& peek() const { return tok_; }
  Token take() {
    Token t = tok_;
    advance();
    return t;
  }
  int line() const { return tok_.line; }

 private:
  void advance() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
    tok_ = Token{};
    tok_.line = line_;
    if (pos_ >= src_.size()) return;
    char c = src_[pos_];
    auto ident_char = [&](size_t at) {
      char x = src_[at];
      if (std::isalnum(static_cast<unsigned char>(x)) || x == '_' || x == '$') {
        return true;
      }
      return x == '.' && at + 1 < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[at + 1])) ||
              src_[at + 1] == '_' || src_[at + 1] == '$');
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t start = pos_;
      while (pos_ < src_.size() && ident_char(pos_)) ++pos_;
      tok_.kind = Token::Kind::kIdent;
      tok_.text = std::string(src_.substr(start, pos_ - start));
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      int base = 10;
      if (c == '0' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == 'x' || src_[pos_ + 1] == 'X')) {
        base = 16;
        pos_ += 2;
      }
      while (pos_ < src_.size() &&
             std::isxdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      std::string text(src_.substr(start, pos_ - start));
      tok_.kind = Token::Kind::kNumber;
      tok_.text = text;
      tok_.number =
          std::stoull(base == 16 ? text.substr(2) : text, nullptr, base);
      return;
    }
    static const char* multi[] = {"==", "!=", "<=", ">=", "&&", "||",
                                  "<<", ">>"};
    for (const char* m : multi) {
      if (src_.substr(pos_).rfind(m, 0) == 0) {
        tok_.kind = Token::Kind::kPunct;
        tok_.text = m;
        pos_ += 2;
        return;
      }
    }
    tok_.kind = Token::Kind::kPunct;
    tok_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  Token tok_;
};

class LpiParser {
 public:
  LpiParser(std::string_view src, ir::Context& ctx, const p4::Program& prog)
      : lex_(src), ctx_(ctx), prog_(prog) {}

  std::vector<Intent> parse() {
    std::vector<Intent> intents;
    while (lex_.peek().kind != Token::Kind::kEnd) {
      expect_ident("intent");
      IntentBuilder ib(ctx_, prog_, expect(Token::Kind::kIdent).text);
      expect_punct("{");
      while (!accept_punct("}")) {
        std::string kw = expect(Token::Kind::kIdent).text;
        if (kw == "assume") {
          ib.assume(parse_expr());
          expect_punct(";");
        } else if (kw == "expect") {
          parse_expect(ib);
        } else {
          fail("expected 'assume' or 'expect', got '" + kw + "'");
        }
      }
      intents.push_back(ib.build());
    }
    return intents;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw util::ParseError(what, lex_.line());
  }

  Token expect(Token::Kind kind) {
    if (lex_.peek().kind != kind) {
      fail("unexpected token '" + lex_.peek().text + "'");
    }
    return lex_.take();
  }

  void expect_punct(const std::string& p) {
    if (lex_.peek().kind != Token::Kind::kPunct || lex_.peek().text != p) {
      fail("expected '" + p + "', got '" + lex_.peek().text + "'");
    }
    lex_.take();
  }

  void expect_ident(const std::string& w) {
    if (lex_.peek().kind != Token::Kind::kIdent || lex_.peek().text != w) {
      fail("expected '" + w + "', got '" + lex_.peek().text + "'");
    }
    lex_.take();
  }

  bool accept_punct(const std::string& p) {
    if (lex_.peek().kind == Token::Kind::kPunct && lex_.peek().text == p) {
      lex_.take();
      return true;
    }
    return false;
  }

  bool accept_ident(const std::string& w) {
    if (lex_.peek().kind == Token::Kind::kIdent && lex_.peek().text == w) {
      lex_.take();
      return true;
    }
    return false;
  }

  void parse_expect(IntentBuilder& ib) {
    if (accept_ident("delivered")) {
      ib.expect_delivered();
      expect_punct(";");
      return;
    }
    if (accept_ident("dropped")) {
      ib.expect_dropped();
      expect_punct(";");
      return;
    }
    if (accept_ident("header")) {
      std::string h = expect(Token::Kind::kIdent).text;
      bool present;
      if (accept_ident("present")) {
        present = true;
      } else if (accept_ident("absent")) {
        present = false;
      } else {
        fail("expected 'present' or 'absent'");
      }
      ib.expect_header(std::move(h), present);
      expect_punct(";");
      return;
    }
    if (accept_ident("checksum")) {
      std::string dest = expect(Token::Kind::kIdent).text;
      expect_ident("over");
      expect_punct("(");
      std::vector<std::string> sources;
      do {
        sources.push_back(expect(Token::Kind::kIdent).text);
      } while (accept_punct(","));
      expect_punct(")");
      expect_punct(";");
      ib.expect_checksum(std::move(dest), std::move(sources));
      return;
    }
    ib.expect(parse_expr());
    expect_punct(";");
  }

  // ----- expressions -------------------------------------------------------

  std::optional<int> field_width(const std::string& name) {
    std::string_view raw = name;
    if (util::starts_with(raw, "in.")) raw = raw.substr(3);
    else if (util::starts_with(raw, "out.")) raw = raw.substr(4);
    else return std::nullopt;  // intents may only reference in./out. fields
    if (raw == "$port") return p4::kPortWidth;
    return prog_.field_width(raw);
  }

  ir::ExprRef leaf_for(const std::string& name) {
    std::optional<int> w = field_width(name);
    if (!w) fail("unknown intent field '" + name + "'");
    return ctx_.field_var(name, *w);
  }

  ir::ExprRef parse_primary(int width_hint) {
    if (accept_punct("(")) {
      ir::ExprRef e = parse_expr(width_hint);
      expect_punct(")");
      return e;
    }
    if (accept_punct("!")) {
      ir::ExprRef e = parse_primary(width_hint);
      if (!e->is_bool()) fail("'!' applied to non-boolean");
      return ctx_.arena.bnot(e);
    }
    if (lex_.peek().kind == Token::Kind::kNumber) {
      Token t = lex_.take();
      int w = width_hint;
      if (w <= 0) {
        w = 1;
        while (!util::fits(t.number, w)) ++w;
      }
      if (!util::fits(t.number, w)) {
        fail("constant does not fit in " + std::to_string(w) + " bits");
      }
      return ctx_.arena.constant(t.number, w);
    }
    return leaf_for(expect(Token::Kind::kIdent).text);
  }

  int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
        op == ">=") {
      return 3;
    }
    if (op == "|") return 4;
    if (op == "^") return 5;
    if (op == "&") return 6;
    if (op == "<<" || op == ">>") return 7;
    if (op == "+" || op == "-") return 8;
    return -1;
  }

  ir::ExprRef combine(const std::string& op, ir::ExprRef a, ir::ExprRef b) {
    if (op == "||" || op == "&&") {
      if (!a->is_bool() || !b->is_bool()) fail("non-boolean operand");
      return op == "||" ? ctx_.arena.bor(a, b) : ctx_.arena.band(a, b);
    }
    if (a->is_bool() || b->is_bool()) fail("boolean operand to '" + op + "'");
    if (a->width != b->width) fail("operand width mismatch for '" + op + "'");
    if (op == "==") return ctx_.arena.cmp(ir::CmpOp::kEq, a, b);
    if (op == "!=") return ctx_.arena.cmp(ir::CmpOp::kNe, a, b);
    if (op == "<") return ctx_.arena.cmp(ir::CmpOp::kLt, a, b);
    if (op == "<=") return ctx_.arena.cmp(ir::CmpOp::kLe, a, b);
    if (op == ">") return ctx_.arena.cmp(ir::CmpOp::kGt, a, b);
    if (op == ">=") return ctx_.arena.cmp(ir::CmpOp::kGe, a, b);
    ir::ArithOp aop;
    if (op == "+") aop = ir::ArithOp::kAdd;
    else if (op == "-") aop = ir::ArithOp::kSub;
    else if (op == "&") aop = ir::ArithOp::kAnd;
    else if (op == "|") aop = ir::ArithOp::kOr;
    else if (op == "^") aop = ir::ArithOp::kXor;
    else if (op == "<<") aop = ir::ArithOp::kShl;
    else if (op == ">>") aop = ir::ArithOp::kShr;
    else fail("unknown operator '" + op + "'");
    return ctx_.arena.arith(aop, a, b);
  }

  ir::ExprRef parse_expr(int width_hint = 0) {
    return parse_binary(parse_primary(width_hint), 0, width_hint);
  }

  ir::ExprRef parse_binary(ir::ExprRef lhs, int min_prec, int width_hint) {
    while (lex_.peek().kind == Token::Kind::kPunct &&
           precedence(lex_.peek().text) >= std::max(min_prec, 1)) {
      std::string op = lex_.take().text;
      int prec = precedence(op);
      int hint = lhs->is_bool() ? width_hint : lhs->width;
      ir::ExprRef rhs = parse_primary(hint);
      while (lex_.peek().kind == Token::Kind::kPunct &&
             precedence(lex_.peek().text) > prec) {
        rhs = parse_binary(rhs, precedence(lex_.peek().text), hint);
      }
      lhs = combine(op, lhs, rhs);
    }
    return lhs;
  }

  Lexer lex_;
  ir::Context& ctx_;
  const p4::Program& prog_;
};

}  // namespace

std::vector<Intent> parse_lpi(std::string_view source, ir::Context& ctx,
                              const p4::Program& prog) {
  return LpiParser(source, ctx, prog).parse();
}

}  // namespace meissa::spec
