// Cooperative cancellation consistency (satellite of the crash-safety
// work): a CancelToken tripped before, between, or during summary waves
// must leave the summary's statistics consistent — completed pipelines
// only, a cancelled wave never spliced — and must never deadlock the
// thread pool (every test returning *is* the no-deadlock evidence, since
// summarize() joins its workers before returning). Same contract one
// level up for the generator, the sequential engine, and the tester.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/apps.hpp"
#include "driver/tester.hpp"
#include "sim/toolchain.hpp"
#include "summary/summary.hpp"
#include "testlib.hpp"

namespace meissa {
namespace {

apps::AppBundle gw4(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 4;  // 8 pipelines across 2 switches — several summary waves
  cfg.elastic_ips = 2;
  return apps::make_gateway(ctx, cfg);
}

TEST(Cancel, PreCancelledSummaryDoesNoWork) {
  ir::Context ctx;
  apps::AppBundle app = gw4(ctx);
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  util::CancelToken token;
  token.cancel();
  summary::SummaryOptions so;
  so.threads = 4;
  so.cancel = &token;
  summary::SummaryResult r = summary::summarize(ctx, g, so);
  EXPECT_TRUE(r.cancelled);
  EXPECT_TRUE(r.per_pipeline.empty());
  EXPECT_EQ(r.resumed_pipelines, 0u);
}

TEST(Cancel, BetweenWavesLeavesCompletedPipelinesOnly) {
  // The on_unit hook fires in the sequential encode loop — a wave
  // boundary. Tripping the token there cancels deterministically between
  // waves: the stats must cover exactly the units that completed.
  ir::Context ctx;
  apps::AppBundle app = gw4(ctx);
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  const size_t instances = g.instances().size();
  ASSERT_GT(instances, 2u);

  util::CancelToken token;
  std::atomic<size_t> units{0};
  summary::SummaryHooks hooks;
  hooks.on_unit = [&](size_t, const summary::SummaryUnit&) {
    if (++units == 2) token.cancel();
  };
  summary::SummaryOptions so;
  so.threads = 4;
  so.cancel = &token;
  so.hooks = &hooks;
  summary::SummaryResult r = summary::summarize(ctx, g, so);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.per_pipeline.size(), units.load());
  EXPECT_LT(r.per_pipeline.size(), instances);
  // Completed pipelines carry real work; the cancelled remainder carries
  // none (a cancelled wave is never spliced, so it never reports paths).
  for (const summary::PipelineSummary& p : r.per_pipeline) {
    EXPECT_GT(p.paths_after, 0u) << p.instance;
  }
}

TEST(Cancel, DuringWavesReturnsWithoutDeadlock) {
  // Trip the token from outside while the waves are running: whichever
  // wave is in flight aborts cooperatively, the pool joins, and the stats
  // stay consistent. Run a few cut points; late cuts may let the summary
  // finish — both outcomes are legal, hanging or crashing is not.
  for (int delay_us : {0, 200, 2000, 20000}) {
    ir::Context ctx;
    apps::AppBundle app = gw4(ctx);
    cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
    util::CancelToken token;
    std::thread killer([&token, delay_us] {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      token.cancel();
    });
    summary::SummaryOptions so;
    so.threads = 4;
    so.cancel = &token;
    summary::SummaryResult r = summary::summarize(ctx, g, so);
    killer.join();
    EXPECT_LE(r.per_pipeline.size(), g.instances().size());
    if (!r.cancelled) {
      EXPECT_EQ(r.per_pipeline.size(), g.instances().size());
    }
    uint64_t checks = 0;
    for (const summary::PipelineSummary& p : r.per_pipeline) {
      checks += p.smt_checks;
    }
    EXPECT_LE(checks, r.total_smt_checks);
  }
}

TEST(Cancel, GeneratorCancelledSummaryYieldsNoTemplates) {
  // A partially summarized graph must never be explored: the generator
  // reports the cancel and returns nothing.
  ir::Context ctx;
  apps::AppBundle app = gw4(ctx);
  util::CancelToken token;
  token.cancel();
  driver::GenOptions opts;
  opts.threads = 4;
  opts.cancel = &token;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  EXPECT_TRUE(templates.empty());
  EXPECT_TRUE(gen.stats().cancelled);
  EXPECT_EQ(gen.stats().templates, 0u);
}

TEST(Cancel, SequentialEngineStopsMidDfs) {
  // Deterministic mid-DFS cut: the sink trips the token after the second
  // result, the engine unwinds at its next poll point and reports the
  // cancel with a partial prefix of the result stream.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);

  std::vector<sym::PathResult> all;
  sym::Engine full(ctx, g);
  full.run([&](const sym::PathResult& r) { all.push_back(r); });
  ASSERT_GT(all.size(), 2u);

  util::CancelToken token;
  sym::EngineOptions eopts;
  eopts.cancel = &token;
  std::vector<sym::PathResult> partial;
  sym::Engine eng(ctx, g, eopts);
  eng.run([&](const sym::PathResult& r) {
    partial.push_back(r);
    if (partial.size() == 2) token.cancel();
  });
  EXPECT_TRUE(eng.stats().cancelled);
  ASSERT_GE(partial.size(), 2u);
  EXPECT_LT(partial.size(), all.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].path, all[i].path) << "result " << i;
  }
}

TEST(Cancel, TesterStopsBetweenTemplatesAndReportsIt) {
  // A pre-tripped token: generation still runs (its cancel is a separate
  // wire), but the injection loop stops before the first case and the
  // report says so instead of faking a clean zero-failure run.
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 2;
  cfg.elastic_ips = 4;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  sim::DeviceProgram compiled = sim::compile(app.dp, app.rules, ctx);
  sim::Device device(compiled, ctx);
  driver::TestRunOptions opts;
  opts.gen.threads = 4;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  util::CancelToken token;
  token.cancel();
  driver::TestReport r = meissa.test(device, app.intents, &token);
  EXPECT_TRUE(r.cancelled);
  EXPECT_GT(r.templates, 0u);
  EXPECT_EQ(r.cases, 0u);
  EXPECT_EQ(r.failed, 0u);
}

}  // namespace
}  // namespace meissa
