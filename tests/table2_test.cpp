// Reproduces the paper's Table 2: for each of the 16 bug scenarios, the
// five tools must produce exactly the paper's detection verdicts.
#include <gtest/gtest.h>

#include "apps/table2.hpp"

namespace meissa::apps {
namespace {

class Table2 : public ::testing::TestWithParam<int> {};

TEST_P(Table2, MatchesPaperMatrix) {
  const int index = GetParam();
  ir::Context ctx;
  BugScenario bug = make_bug(ctx, index);
  Table2Row row = evaluate_bug(ctx, bug, /*budget_seconds=*/30);
  std::array<bool, 5> want = paper_matrix(index);
  EXPECT_EQ(row.meissa, want[0]) << "Meissa on bug " << index << " ("
                                 << bug.name << ") " << row.notes;
  EXPECT_EQ(row.p4pktgen, want[1]) << "p4pktgen on bug " << index << " ("
                                   << bug.name << ") " << row.notes;
  EXPECT_EQ(row.pta, want[2]) << "PTA on bug " << index << " (" << bug.name
                              << ") " << row.notes;
  EXPECT_EQ(row.gauntlet, want[3]) << "Gauntlet on bug " << index << " ("
                                   << bug.name << ") " << row.notes;
  EXPECT_EQ(row.aquila, want[4]) << "Aquila on bug " << index << " ("
                                 << bug.name << ") " << row.notes;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, Table2, ::testing::Range(1, 17));

}  // namespace
}  // namespace meissa::apps
