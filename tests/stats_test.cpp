// Tests for the stats merge operators used when aggregating per-worker
// explorations and per-app benchmark runs.
#include <gtest/gtest.h>

#include "driver/generator.hpp"

namespace meissa {
namespace {

TEST(StatsMerge, SolverStatsSumsAllCounters) {
  smt::SolverStats a;
  a.checks = 10;
  a.fast_path_hits = 4;
  a.sat_calls = 6;
  a.fast_path_skipped = 3;
  a.unknowns = 1;
  a.pushes = 20;
  a.pops = 18;
  smt::SolverStats b;
  b.checks = 1;
  b.fast_path_hits = 1;
  b.sat_calls = 0;
  b.fast_path_skipped = 2;
  b.unknowns = 2;
  b.pushes = 2;
  b.pops = 2;
  a += b;
  EXPECT_EQ(a.checks, 11u);
  EXPECT_EQ(a.fast_path_hits, 5u);
  EXPECT_EQ(a.sat_calls, 6u);
  EXPECT_EQ(a.fast_path_skipped, 5u);
  EXPECT_EQ(a.unknowns, 3u);
  EXPECT_EQ(a.pushes, 22u);
  EXPECT_EQ(a.pops, 20u);
}

TEST(StatsMerge, EngineStatsSumsAndOrsTimeout) {
  sym::EngineStats a;
  a.valid_paths = 3;
  a.pruned_paths = 2;
  a.folded_checks = 7;
  a.nodes_visited = 40;
  a.offtarget_paths = 1;
  a.static_prunes = 4;
  a.skipped_checks = 6;
  a.degraded_paths = 2;
  a.pc_cache_hits = 8;
  a.pc_cache_misses = 12;
  a.pc_model_reuse = 2;
  a.solver.checks = 5;
  sym::EngineStats b;
  b.valid_paths = 2;
  b.pruned_paths = 1;
  b.degraded_paths = 3;
  b.cancelled = true;
  b.folded_checks = 3;
  b.nodes_visited = 10;
  b.offtarget_paths = 0;
  b.static_prunes = 1;
  b.skipped_checks = 2;
  b.timed_out = true;
  b.pc_cache_hits = 2;
  b.pc_cache_misses = 3;
  b.pc_model_reuse = 1;
  b.solver.checks = 4;
  a += b;
  EXPECT_EQ(a.valid_paths, 5u);
  EXPECT_EQ(a.pruned_paths, 3u);
  EXPECT_EQ(a.folded_checks, 10u);
  EXPECT_EQ(a.nodes_visited, 50u);
  EXPECT_EQ(a.offtarget_paths, 1u);
  EXPECT_EQ(a.static_prunes, 5u);
  EXPECT_EQ(a.skipped_checks, 8u);
  EXPECT_EQ(a.degraded_paths, 5u);
  EXPECT_TRUE(a.timed_out);
  EXPECT_TRUE(a.cancelled);
  EXPECT_EQ(a.pc_cache_hits, 10u);
  EXPECT_EQ(a.pc_cache_misses, 15u);
  EXPECT_EQ(a.pc_model_reuse, 3u);
  EXPECT_EQ(a.solver.checks, 9u);
  // timed_out and cancelled are sticky in both directions.
  sym::EngineStats c;
  a += c;
  EXPECT_TRUE(a.timed_out);
  EXPECT_TRUE(a.cancelled);
}

TEST(StatsMerge, GenStatsSumsTimesCountersAndPipelines) {
  driver::GenStats a;
  a.build_seconds = 1.0;
  a.summary_seconds = 2.0;
  a.dfs_seconds = 3.0;
  a.total_seconds = 6.0;
  a.smt_checks = 100;
  a.smt_calls_skipped = 30;
  a.templates = 5;
  a.diagnostics = 1;
  a.paths_original = util::BigCount::of(1000);
  a.paths_summarized = util::BigCount::of(10);
  a.pipelines.push_back({"ingress0", util::BigCount::of(100), 4, 9, 0.5});
  a.engine.valid_paths = 5;
  a.exact_paths = 5;
  a.degraded_paths = 1;
  a.smt_unknowns = 1;
  driver::GenStats b;
  b.timed_out = true;
  b.cancelled = true;
  b.exact_paths = 2;
  b.degraded_paths = 4;
  b.smt_unknowns = 6;
  b.build_seconds = 0.5;
  b.summary_seconds = 0.25;
  b.dfs_seconds = 0.25;
  b.total_seconds = 1.0;
  b.smt_checks = 10;
  b.smt_calls_skipped = 5;
  b.templates = 2;
  b.paths_original = util::BigCount::of(24);
  b.paths_summarized = util::BigCount::of(6);
  b.pipelines.push_back({"egress0", util::BigCount::of(8), 2, 3, 0.1});
  b.engine.valid_paths = 2;
  a += b;
  EXPECT_TRUE(a.timed_out);
  EXPECT_TRUE(a.cancelled);
  EXPECT_EQ(a.exact_paths, 7u);
  EXPECT_EQ(a.degraded_paths, 5u);
  EXPECT_EQ(a.smt_unknowns, 7u);
  EXPECT_DOUBLE_EQ(a.build_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.summary_seconds, 2.25);
  EXPECT_DOUBLE_EQ(a.dfs_seconds, 3.25);
  EXPECT_DOUBLE_EQ(a.total_seconds, 7.0);
  EXPECT_EQ(a.smt_checks, 110u);
  EXPECT_EQ(a.smt_calls_skipped, 35u);
  EXPECT_EQ(a.templates, 7u);
  EXPECT_EQ(a.diagnostics, 1u);
  EXPECT_EQ(a.paths_original.exact(), 1024u);
  EXPECT_EQ(a.paths_summarized.exact(), 16u);
  ASSERT_EQ(a.pipelines.size(), 2u);
  EXPECT_EQ(a.pipelines[0].instance, "ingress0");
  EXPECT_EQ(a.pipelines[1].instance, "egress0");
  EXPECT_EQ(a.engine.valid_paths, 7u);
}

}  // namespace
}  // namespace meissa
