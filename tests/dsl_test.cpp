// Tests for the M4 program DSL and the textual LPI intent language: a
// full program written as text must behave identically to its builder-API
// twin, and malformed inputs must fail with located errors.
#include <gtest/gtest.h>

#include "driver/tester.hpp"
#include "p4/dsl.hpp"
#include "sim/toolchain.hpp"
#include "spec/lpi.hpp"

namespace meissa::p4 {
namespace {

constexpr const char* kRouterM4 = R"m4(
program tiny_router;

# A two-table router: LPM routing then MAC rewrite, Fig. 7 style.
header eth  { dst:48; src:48; type:16; }
header ipv4 { ver_ihl:8; tos:8; len:16; id:16; frag:16;
              ttl:8; proto:8; csum:16; src:32; dst:32; }
metadata meta.nexthop:16;

action set_nexthop(nh:16, port:9) {
  meta.nexthop = nh;
  ig.eg_spec = port;
  hdr.ipv4.ttl = hdr.ipv4.ttl - 1;
}
action rewrite(dmac:48) { hdr.eth.dst = dmac; }
action drop() { ig.drop = 1; }
action nop() { }

table lpm_route {
  key hdr.ipv4.dst : lpm;
  actions set_nexthop, drop;
  default drop();
}
table nexthop {
  key meta.nexthop : exact;
  actions rewrite, nop;
  default nop();
}

pipeline ingress {
  parser {
    state start {
      extract eth;
      select hdr.eth.type { 0x0800 -> parse_ipv4; default -> accept; }
    }
    state parse_ipv4 { extract ipv4; goto accept; }
  }
  control {
    if (valid(ipv4) && hdr.ipv4.ttl > 1) {
      apply lpm_route;
      apply nexthop;
    } else {
      ig.drop = 1;
    }
  }
  deparser {
    emit eth, ipv4;
    checksum hdr.ipv4.csum over ipv4
      (hdr.ipv4.ver_ihl, hdr.ipv4.tos, hdr.ipv4.len, hdr.ipv4.id,
       hdr.ipv4.frag, hdr.ipv4.ttl, hdr.ipv4.proto, hdr.ipv4.src,
       hdr.ipv4.dst);
  }
}

topology {
  instance sw0.ig = ingress @ switch 0;
  entry sw0.ig;
}

rules {
  lpm_route: lpm 0x0a010000/16 -> set_nexthop(1, 10);
  lpm_route: lpm 0x0a020000/16 -> set_nexthop(2, 11);
  nexthop:   exact 1 -> rewrite(0x020000000001);
  nexthop:   exact 2 -> rewrite(0x020000000002);
}
)m4";

constexpr const char* kRouterLpi = R"lpi(
intent route_10_1 {
  assume in.hdr.eth.type == 0x0800;
  assume (in.hdr.ipv4.dst & 0xffff0000) == 0x0a010000;
  assume in.hdr.ipv4.ttl > 1;
  expect delivered;
  expect out.$port == 10;
  expect out.hdr.eth.dst == 0x020000000001;
  expect out.hdr.ipv4.ttl == in.hdr.ipv4.ttl - 1;
}
intent ttl_expiry {
  assume in.hdr.eth.type == 0x0800;
  assume in.hdr.ipv4.ttl <= 1;
  expect dropped;
}
)lpi";

TEST(Dsl, ParsesAndTestsEndToEnd) {
  ir::Context ctx;
  ParsedUnit unit = parse_m4(kRouterM4, ctx);
  EXPECT_EQ(unit.dp.program.name, "tiny_router");
  EXPECT_EQ(unit.dp.program.tables.size(), 2u);
  EXPECT_EQ(unit.rules.entries.size(), 4u);

  std::vector<spec::Intent> intents =
      spec::parse_lpi(kRouterLpi, ctx, unit.dp.program);
  ASSERT_EQ(intents.size(), 2u);
  EXPECT_EQ(intents[0].name, "route_10_1");
  EXPECT_EQ(intents[0].assumes.size(), 3u);
  EXPECT_EQ(intents[0].expects.size(), 4u);

  sim::DeviceProgram compiled = sim::compile(unit.dp, unit.rules, ctx);
  sim::Device device(compiled, ctx);
  driver::Meissa meissa(ctx, unit.dp, unit.rules, {});
  driver::TestReport report = meissa.test(device, intents);
  EXPECT_GT(report.cases, 3u);
  EXPECT_TRUE(report.all_passed()) << report.str();
}

TEST(Dsl, DetectsPlantedRuleBugViaLpi) {
  // Swap the two nexthop MACs in the rules: route_10_1's expectation on
  // out.hdr.eth.dst must fail.
  std::string buggy = kRouterM4;
  size_t pos = buggy.find("exact 1 -> rewrite(0x020000000001)");
  ASSERT_NE(pos, std::string::npos);
  buggy.replace(pos, 34, "exact 1 -> rewrite(0x020000000002)");
  ir::Context ctx;
  ParsedUnit unit = parse_m4(buggy, ctx);
  std::vector<spec::Intent> intents =
      spec::parse_lpi(kRouterLpi, ctx, unit.dp.program);
  sim::DeviceProgram compiled = sim::compile(unit.dp, unit.rules, ctx);
  sim::Device device(compiled, ctx);
  driver::Meissa meissa(ctx, unit.dp, unit.rules, {});
  driver::TestReport report = meissa.test(device, intents);
  EXPECT_GT(report.failed, 0u);
}

TEST(Dsl, ParseErrorsCarryLineNumbers) {
  ir::Context ctx;
  try {
    parse_m4("program x;\nheader h { broken }\n", ctx);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_GT(e.column(), 0);
    // The message carries a caret-annotated snippet of the offending line.
    std::string msg = e.what();
    EXPECT_NE(msg.find("header h { broken }"), std::string::npos) << msg;
    EXPECT_NE(msg.find('^'), std::string::npos) << msg;
  }
}

TEST(Dsl, ParseErrorsCarryColumnAndSnippet) {
  // "program x q" — the parser expects ';' and finds 'q' at column 11.
  ir::Context ctx;
  try {
    parse_m4("program x q", ctx);
    FAIL() << "expected ParseError";
  } catch (const util::ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_EQ(e.column(), 11);
    std::string msg = e.what();
    EXPECT_NE(msg.find("(line 1, col 11)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("\n  program x q\n"), std::string::npos) << msg;
    // Caret sits under column 11 (two-space indent + 10 spaces).
    EXPECT_NE(msg.find("\n  " + std::string(10, ' ') + "^"), std::string::npos)
        << msg;
  }
}

TEST(Dsl, RejectsUnknownFieldInAction) {
  ir::Context ctx;
  EXPECT_THROW(parse_m4(R"(program x;
header h { a:8; }
action bad() { hdr.h.nope = 1; }
)",
                        ctx),
               util::ParseError);
}

TEST(Dsl, RejectsWidthMismatch) {
  ir::Context ctx;
  EXPECT_THROW(parse_m4(R"(program x;
header h { a:8; b:16; }
action bad() { hdr.h.a = hdr.h.b; }
)",
                        ctx),
               util::ParseError);
}

TEST(Dsl, RejectsSemanticErrorsViaValidation) {
  // Table referencing an unknown action surfaces as a ValidationError.
  ir::Context ctx;
  EXPECT_THROW(parse_m4(R"(program x;
header h { a:8; }
table t { key hdr.h.a : exact; actions ghost; default ghost(); }
pipeline p {
  parser { state start { extract h; goto accept; } }
  control { apply t; }
  deparser { emit h; }
}
topology { instance i = p @ switch 0; entry i; }
)",
                        ctx),
               util::ValidationError);
}

TEST(Lpi, RejectsUnprefixedFields) {
  ir::Context ctx;
  ParsedUnit unit = parse_m4(kRouterM4, ctx);
  EXPECT_THROW(
      spec::parse_lpi("intent x { assume hdr.ipv4.ttl > 1; }", ctx,
                      unit.dp.program),
      util::ParseError);
}

TEST(Dsl, RangeAndTernaryRules) {
  ir::Context ctx;
  ParsedUnit unit = parse_m4(R"(program x;
header h { a:16; b:16; }
action pick(p:9) { ig.eg_spec = p; }
action nop() { }
table t {
  key hdr.h.a : range, hdr.h.b : ternary;
  actions pick, nop;
  default nop();
}
pipeline p {
  parser { state start { extract h; goto accept; } }
  control { apply t; }
  deparser { emit h; }
}
topology { instance i = p @ switch 0; entry i; }
rules {
  t: range 0x10..0x20, ternary 0x1200/0xff00 prio 0 -> pick(3);
  t: any, any prio 1 -> pick(4);
}
)",
                             ctx);
  EXPECT_EQ(unit.rules.entries.size(), 2u);
  driver::Meissa meissa(ctx, unit.dp, unit.rules, {});
  auto templates = meissa.generate();
  EXPECT_GE(templates.size(), 3u);  // both entries + miss-or-drop coverage
}

}  // namespace
}  // namespace meissa::p4
