// Shared fixtures for Meissa tests: small hand-built data planes, a
// random-CFG generator for property tests, and a concrete reference
// interpreter used as the ground-truth oracle.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "cfg/build.hpp"
#include "p4/rules.hpp"
#include "util/rng.hpp"

namespace meissa::testlib {

// The paper's Fig. 7 workload: table ipv4_host (dstIP -> egressPort)
// followed by table mac_agent (egressPort -> dstMAC), with `n_hosts`
// entries in each. Single pipeline, single switch.
p4::DataPlane make_fig7_plane(ir::Context& ctx);
p4::RuleSet fig7_rules(int n_hosts);

// The paper's Fig. 8 shape: an ingress pipeline that routes TCP to the
// egress pipeline (eg_spec == 1) and drops everything else, and an egress
// pipeline that branches on TCP vs UDP — so "proto == TCP" is a public
// pre-condition of the egress and its UDP branch is summarized away.
p4::DataPlane make_fig8_plane(ir::Context& ctx);
p4::RuleSet fig8_rules();

// Result of concretely interpreting a CFG: which terminal was reached and
// the final state. Interpretation backtracks at forks (assume-guarded
// branches), so it is a ground-truth "which path does this input drive"
// oracle independent of the symbolic engine.
struct ConcreteOutcome {
  cfg::NodeId terminal = cfg::kNoNode;
  cfg::ExitKind exit = cfg::ExitKind::kNone;
  int emit_instance = -1;
  ir::ConcreteState state;
  cfg::Path path;
};

std::optional<ConcreteOutcome> concrete_run(const cfg::Cfg& g,
                                            ir::ConcreteState initial,
                                            const ir::Context& ctx);

// Random multi-pipeline CFG for property tests: `k` pipeline instances in
// a chain, each a DAG of assume/assign diamonds over a small field set.
cfg::Cfg random_pipeline_cfg(ir::Context& ctx, util::Rng& rng, int k,
                             int diamonds_per_pipe);

// The fields random_pipeline_cfg draws from (interned as x0..x3, 8 bits).
std::vector<ir::FieldId> random_cfg_fields(ir::Context& ctx);

namespace json {

// Strict mini JSON value/parser for round-tripping the JSON the repo
// emits (reports, lint results, metrics snapshots, Chrome traces). Strict
// means: exactly one top-level value, no trailing garbage, no trailing
// commas, full string-escape validation — so a test failure points at a
// real emitter bug, not parser leniency.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  // Insertion order preserved (the emitters promise stable key order).
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  // Object member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  // Checked accessors: test-fail (throw) on kind mismatch or missing key.
  const Value& at(const std::string& key) const;
  const std::string& as_string() const;
  double as_number() const;
  bool as_bool() const;
};

// Parses one JSON document. Throws std::runtime_error (with an offset)
// on any syntax violation.
Value parse(std::string_view text);

}  // namespace json

}  // namespace meissa::testlib
