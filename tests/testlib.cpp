#include "testlib.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "apps/demos.hpp"

namespace meissa::testlib {

p4::DataPlane make_fig7_plane(ir::Context& ctx) {
  return apps::demos::make_fig7_plane(ctx);
}
p4::RuleSet fig7_rules(int n_hosts) { return apps::demos::fig7_rules(n_hosts); }
p4::DataPlane make_fig8_plane(ir::Context& ctx) {
  return apps::demos::make_fig8_plane(ctx);
}
p4::RuleSet fig8_rules() { return apps::demos::fig8_rules(); }

std::optional<ConcreteOutcome> concrete_run(const cfg::Cfg& g,
                                            ir::ConcreteState initial,
                                            const ir::Context& ctx) {
  // Backtracking walk: at forks, try successors in order; commit to the
  // first that completes. Statement evaluation mirrors cfg::eval_path.
  std::optional<ConcreteOutcome> result;
  cfg::Path path;
  auto walk = [&](auto&& self, cfg::NodeId id, ir::ConcreteState s) -> bool {
    const cfg::Node& n = g.node(id);
    cfg::Path one{id};
    auto after = cfg::eval_path(g, one, std::move(s), ctx);
    if (!after) return false;
    path.push_back(id);
    if (n.succ.empty()) {
      ConcreteOutcome out;
      out.terminal = id;
      out.exit = n.exit;
      out.emit_instance = n.emit_instance;
      out.state = *after;
      out.path = path;
      result = out;
      return true;
    }
    for (cfg::NodeId succ : n.succ) {
      if (self(self, succ, *after)) return true;
    }
    path.pop_back();
    return false;
  };
  walk(walk, g.entry(), std::move(initial));
  return result;
}

std::vector<ir::FieldId> random_cfg_fields(ir::Context& ctx) {
  std::vector<ir::FieldId> fs;
  for (int i = 0; i < 4; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    fs.push_back(ctx.fields.intern(name, 8));
  }
  return fs;
}

cfg::Cfg random_pipeline_cfg(ir::Context& ctx, util::Rng& rng, int k,
                             int diamonds_per_pipe) {
  std::vector<ir::FieldId> fields = random_cfg_fields(ctx);
  cfg::Cfg g;
  auto rand_aexp = [&](int depth) -> ir::ExprRef {
    auto self = [&](auto&& rec, int d) -> ir::ExprRef {
      if (d == 0 || rng.chance(1, 3)) {
        if (rng.chance(1, 2)) {
          return ctx.arena.constant(rng.bits(8), 8);
        }
        return ctx.var(fields[rng.below(fields.size())]);
      }
      const ir::ArithOp ops[] = {ir::ArithOp::kAdd, ir::ArithOp::kSub,
                                 ir::ArithOp::kAnd, ir::ArithOp::kOr,
                                 ir::ArithOp::kXor};
      return ctx.arena.arith(ops[rng.below(5)], rec(rec, d - 1), rec(rec, d - 1));
    };
    return self(self, depth);
  };
  auto rand_cond = [&]() {
    return ctx.arena.cmp(static_cast<ir::CmpOp>(rng.below(6)),
                         ctx.var(fields[rng.below(fields.size())]),
                         ctx.arena.constant(rng.bits(rng.chance(1, 2) ? 2 : 8), 8));
  };

  cfg::NodeId entry = g.add(ir::Stmt::nop());
  g.set_entry(entry);
  cfg::NodeId cur = entry;
  for (int pipe = 0; pipe < k; ++pipe) {
    cfg::InstanceInfo info;
    info.name = "p";
    info.name += std::to_string(pipe);
    info.pipeline = info.name;
    cfg::NodeId pentry = g.add(ir::Stmt::nop());
    g.link(cur, pentry);
    info.entry = pentry;
    cfg::NodeId c = pentry;
    for (int d = 0; d < diamonds_per_pipe; ++d) {
      ir::ExprRef cond = rand_cond();
      cfg::NodeId fork = g.add(ir::Stmt::nop());
      g.link(c, fork);
      cfg::NodeId join = g.add(ir::Stmt::nop());
      for (int side = 0; side < 2; ++side) {
        ir::ExprRef guard = side == 0 ? cond : ctx.arena.bnot(cond);
        cfg::NodeId a = g.add(ir::Stmt::assume(guard));
        g.link(fork, a);
        cfg::NodeId b = a;
        int assigns = static_cast<int>(rng.range(0, 2));
        for (int i = 0; i < assigns; ++i) {
          cfg::NodeId asg = g.add(ir::Stmt::assign(
              fields[rng.below(fields.size())], rand_aexp(2)));
          g.link(b, asg);
          b = asg;
        }
        g.link(b, join);
      }
      c = join;
    }
    cfg::NodeId pexit = g.add(ir::Stmt::nop());
    g.link(c, pexit);
    info.exit = pexit;
    for (cfg::NodeId n = pentry; n <= pexit; ++n) {
      g.node(n).instance = static_cast<int>(g.instances().size());
    }
    g.instances().push_back(std::move(info));
    cur = pexit;
  }
  cfg::NodeId emit = g.add(ir::Stmt::nop());
  g.node(emit).exit = cfg::ExitKind::kEmit;
  g.node(emit).emit_instance = k - 1;
  g.link(cur, emit);
  g.check_well_formed();
  return g;
}

namespace json {

namespace {

// Recursive-descent parser over a string_view; throws std::runtime_error
// with the byte offset on the first violation.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    char c = peek();
    Value v;
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        v.kind = Value::Kind::kString;
        v.str = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.kind = Value::Kind::kNull;
        return v;
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = peek();
            ++pos_;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The repo's emitters only \u-escape control characters, so a
          // one-byte decode suffices; anything else is an emitter bug.
          if (code > 0x7F) fail("unexpected non-ASCII \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Value parse_number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail("bad number");
    }
    // Leading zeros are invalid JSON ("01"): a lone 0 must be followed by
    // '.', 'e', or a delimiter.
    bool leading_zero = peek() == '0';
    size_t digits_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (leading_zero && pos_ - digits_start > 1) fail("leading zero");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required after decimal point");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit required in exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    if (!std::isfinite(v.number)) fail("number out of range");
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::runtime_error("json: missing key '" + key + "'");
  return *v;
}

const std::string& Value::as_string() const {
  if (kind != Kind::kString) throw std::runtime_error("json: not a string");
  return str;
}

double Value::as_number() const {
  if (kind != Kind::kNumber) throw std::runtime_error("json: not a number");
  return number;
}

bool Value::as_bool() const {
  if (kind != Kind::kBool) throw std::runtime_error("json: not a bool");
  return boolean;
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace json

}  // namespace meissa::testlib
