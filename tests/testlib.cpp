#include "testlib.hpp"

#include "apps/demos.hpp"

namespace meissa::testlib {

p4::DataPlane make_fig7_plane(ir::Context& ctx) {
  return apps::demos::make_fig7_plane(ctx);
}
p4::RuleSet fig7_rules(int n_hosts) { return apps::demos::fig7_rules(n_hosts); }
p4::DataPlane make_fig8_plane(ir::Context& ctx) {
  return apps::demos::make_fig8_plane(ctx);
}
p4::RuleSet fig8_rules() { return apps::demos::fig8_rules(); }

std::optional<ConcreteOutcome> concrete_run(const cfg::Cfg& g,
                                            ir::ConcreteState initial,
                                            const ir::Context& ctx) {
  // Backtracking walk: at forks, try successors in order; commit to the
  // first that completes. Statement evaluation mirrors cfg::eval_path.
  std::optional<ConcreteOutcome> result;
  cfg::Path path;
  auto walk = [&](auto&& self, cfg::NodeId id, ir::ConcreteState s) -> bool {
    const cfg::Node& n = g.node(id);
    cfg::Path one{id};
    auto after = cfg::eval_path(g, one, std::move(s), ctx);
    if (!after) return false;
    path.push_back(id);
    if (n.succ.empty()) {
      ConcreteOutcome out;
      out.terminal = id;
      out.exit = n.exit;
      out.emit_instance = n.emit_instance;
      out.state = *after;
      out.path = path;
      result = out;
      return true;
    }
    for (cfg::NodeId succ : n.succ) {
      if (self(self, succ, *after)) return true;
    }
    path.pop_back();
    return false;
  };
  walk(walk, g.entry(), std::move(initial));
  return result;
}

std::vector<ir::FieldId> random_cfg_fields(ir::Context& ctx) {
  std::vector<ir::FieldId> fs;
  for (int i = 0; i < 4; ++i) {
    std::string name = "x";
    name += std::to_string(i);
    fs.push_back(ctx.fields.intern(name, 8));
  }
  return fs;
}

cfg::Cfg random_pipeline_cfg(ir::Context& ctx, util::Rng& rng, int k,
                             int diamonds_per_pipe) {
  std::vector<ir::FieldId> fields = random_cfg_fields(ctx);
  cfg::Cfg g;
  auto rand_aexp = [&](int depth) -> ir::ExprRef {
    auto self = [&](auto&& rec, int d) -> ir::ExprRef {
      if (d == 0 || rng.chance(1, 3)) {
        if (rng.chance(1, 2)) {
          return ctx.arena.constant(rng.bits(8), 8);
        }
        return ctx.var(fields[rng.below(fields.size())]);
      }
      const ir::ArithOp ops[] = {ir::ArithOp::kAdd, ir::ArithOp::kSub,
                                 ir::ArithOp::kAnd, ir::ArithOp::kOr,
                                 ir::ArithOp::kXor};
      return ctx.arena.arith(ops[rng.below(5)], rec(rec, d - 1), rec(rec, d - 1));
    };
    return self(self, depth);
  };
  auto rand_cond = [&]() {
    return ctx.arena.cmp(static_cast<ir::CmpOp>(rng.below(6)),
                         ctx.var(fields[rng.below(fields.size())]),
                         ctx.arena.constant(rng.bits(rng.chance(1, 2) ? 2 : 8), 8));
  };

  cfg::NodeId entry = g.add(ir::Stmt::nop());
  g.set_entry(entry);
  cfg::NodeId cur = entry;
  for (int pipe = 0; pipe < k; ++pipe) {
    cfg::InstanceInfo info;
    info.name = "p";
    info.name += std::to_string(pipe);
    info.pipeline = info.name;
    cfg::NodeId pentry = g.add(ir::Stmt::nop());
    g.link(cur, pentry);
    info.entry = pentry;
    cfg::NodeId c = pentry;
    for (int d = 0; d < diamonds_per_pipe; ++d) {
      ir::ExprRef cond = rand_cond();
      cfg::NodeId fork = g.add(ir::Stmt::nop());
      g.link(c, fork);
      cfg::NodeId join = g.add(ir::Stmt::nop());
      for (int side = 0; side < 2; ++side) {
        ir::ExprRef guard = side == 0 ? cond : ctx.arena.bnot(cond);
        cfg::NodeId a = g.add(ir::Stmt::assume(guard));
        g.link(fork, a);
        cfg::NodeId b = a;
        int assigns = static_cast<int>(rng.range(0, 2));
        for (int i = 0; i < assigns; ++i) {
          cfg::NodeId asg = g.add(ir::Stmt::assign(
              fields[rng.below(fields.size())], rand_aexp(2)));
          g.link(b, asg);
          b = asg;
        }
        g.link(b, join);
      }
      c = join;
    }
    cfg::NodeId pexit = g.add(ir::Stmt::nop());
    g.link(c, pexit);
    info.exit = pexit;
    for (cfg::NodeId n = pentry; n <= pexit; ++n) {
      g.node(n).instance = static_cast<int>(g.instances().size());
    }
    g.instances().push_back(std::move(info));
    cur = pexit;
  }
  cfg::NodeId emit = g.add(ir::Stmt::nop());
  g.node(emit).exit = cfg::ExitKind::kEmit;
  g.node(emit).emit_instance = k - 1;
  g.link(cur, emit);
  g.check_well_formed();
  return g;
}

}  // namespace meissa::testlib
