// Batch-equivalence and arena-semantics suite for the batched execution
// core: run_batch must produce byte-identical DeviceOutputs (including
// stringified traces) to per-packet inject() across the demo apps and the
// seeded-bug corpus, for several batch sizes; plus register semantics,
// eval-fallback accounting, and trace gating.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "fuzz/mutator.hpp"
#include "obs/metrics.hpp"
#include "sim/toolchain.hpp"

namespace meissa::sim {
namespace {

// Deterministic structurally-valid inputs for a data plane.
std::vector<DeviceInput> make_inputs(const p4::DataPlane& dp,
                                     const p4::RuleSet& rules, size_t n,
                                     uint64_t seed) {
  fuzz::Mutator mut(dp, rules);
  util::Rng rng(seed);
  std::vector<DeviceInput> ins;
  for (size_t i = 0; i < n; ++i) {
    DeviceInput in = mut.random_packet(rng);
    if (i % 2 == 1) mut.mutate(in, rng);  // half mutated, half well-formed
    ins.push_back(std::move(in));
  }
  return ins;
}

// Asserts run_batch == inject for every input, at the given batch size.
void expect_equivalent(Device& device, const std::vector<DeviceInput>& ins,
                       size_t batch_size) {
  std::vector<DeviceOutput> expected;
  for (const DeviceInput& in : ins) expected.push_back(device.inject(in));

  ExecArena arena;
  std::vector<DeviceOutput> got(ins.size());
  for (size_t base = 0; base < ins.size(); base += batch_size) {
    size_t n = std::min(batch_size, ins.size() - base);
    device.run_batch({ins.data() + base, n}, {got.data() + base, n}, arena);
  }

  for (size_t i = 0; i < ins.size(); ++i) {
    SCOPED_TRACE("input " + std::to_string(i) + " batch " +
                 std::to_string(batch_size));
    EXPECT_EQ(expected[i].accepted, got[i].accepted);
    EXPECT_EQ(expected[i].dropped, got[i].dropped);
    EXPECT_EQ(expected[i].port, got[i].port);
    EXPECT_EQ(expected[i].bytes, got[i].bytes);
    EXPECT_EQ(device.render_trace(expected[i].trace),
              device.render_trace(got[i].trace));
  }
}

void check_app(ir::Context& ctx, const p4::DataPlane& dp,
               const p4::RuleSet& rules, const FaultSpec& fault = {}) {
  Device device(compile(dp, rules, ctx, fault), ctx);
  std::vector<DeviceInput> ins = make_inputs(dp, rules, 24, 0xba7u);
  for (size_t b : {size_t{1}, size_t{7}, size_t{64}}) {
    expect_equivalent(device, ins, b);
  }
}

apps::AppBundle demo_app(ir::Context& ctx, const std::string& name) {
  if (name == "router") return apps::make_router(ctx, 6);
  if (name == "mtag") return apps::make_mtag(ctx, 4);
  if (name == "acl") return apps::make_acl(ctx, 4, 4);
  if (name == "switchp4") {
    apps::SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    return apps::make_switchp4(ctx, cfg);
  }
  apps::GwConfig cfg;
  cfg.level = name[3] - '0';
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

class BatchEquivalenceApp : public testing::TestWithParam<const char*> {};

TEST_P(BatchEquivalenceApp, MatchesInject) {
  ir::Context ctx;
  apps::AppBundle app = demo_app(ctx, GetParam());
  check_app(ctx, app.dp, app.rules);
}

INSTANTIATE_TEST_SUITE_P(Apps, BatchEquivalenceApp,
                         testing::Values("router", "mtag", "acl", "switchp4",
                                         "gw-1", "gw-2", "gw-3", "gw-4"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

class BatchEquivalenceBug : public testing::TestWithParam<int> {};

TEST_P(BatchEquivalenceBug, MatchesInject) {
  ir::Context ctx;
  apps::BugScenario s = apps::make_bug(ctx, GetParam());
  check_app(ctx, s.bundle.dp, s.bundle.rules, s.fault);
}

INSTANTIATE_TEST_SUITE_P(Bugs, BatchEquivalenceBug, testing::Range(1, 17));

// ------------------------------------------------------ register semantics

Device gw1_device(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  return Device(compile(app.dp, app.rules, ctx), ctx);
}

TEST(Registers, SetRegisterOverwriteOrdering) {
  ir::Context ctx;
  Device device = gw1_device(ctx);
  device.set_register("gw_stats", 0, 41);
  device.set_register("gw_stats", 0, 7);  // last write wins
  EXPECT_EQ(device.get_register("gw_stats", 0), 7u);
}

TEST(Registers, SetRegistersMergesOverInstalled) {
  ir::Context ctx;
  Device device = gw1_device(ctx);
  device.set_register("gw_stats", 0, 1);
  ir::ConcreteState regs;
  regs[ctx.fields.intern(p4::register_field("gw_stats", 1), 32)] = 2;
  device.set_registers(regs);
  EXPECT_EQ(device.get_register("gw_stats", 0), 1u);  // untouched cell kept
  EXPECT_EQ(device.get_register("gw_stats", 1), 2u);
}

TEST(Registers, UnknownRegisterNameThrows) {
  ir::Context ctx;
  Device device = gw1_device(ctx);
  EXPECT_THROW(device.set_register("no_such_reg", 0, 1), util::Error);
  EXPECT_THROW(device.set_register("gw_stats", 99, 1), util::Error);
  EXPECT_EQ(device.get_register("no_such_reg", 0), std::nullopt);
}

TEST(Registers, SnapshotSemanticsAcrossBatch) {
  // Every packet starts from the installed register snapshot: in-exec
  // register writes (gw-1's stats bump) must not leak into later packets
  // of the same batch, so a batch of identical inputs yields identical
  // outputs and the installed value survives unchanged.
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  Device device(compile(app.dp, app.rules, ctx), ctx);
  device.set_register("gw_stats", 0, 41);

  std::vector<DeviceInput> ins(3, make_inputs(app.dp, app.rules, 1, 9)[0]);
  std::vector<DeviceOutput> outs(3);
  ExecArena arena;
  device.run_batch(ins, outs, arena);
  EXPECT_EQ(outs[0].dropped, outs[2].dropped);
  EXPECT_EQ(outs[0].port, outs[2].port);
  EXPECT_EQ(outs[0].bytes, outs[2].bytes);
  EXPECT_EQ(device.get_register("gw_stats", 0), 41u);
}

// ---------------------------------------------------- eval-fallback audit

TEST(EvalFallback, CountedAndTraced) {
  // Bug 3's program reads hdr.ipv4.ttl without a validity guard while its
  // typo'd parser never extracts ipv4: the read falls back to 0, which
  // must be counted and leave an attributable trace event.
  ir::Context ctx;
  apps::BugScenario s = apps::make_bug(ctx, 3);
  Device device(compile(s.bundle.dp, s.bundle.rules, ctx), ctx);
  ASSERT_FALSE(s.pta_inputs.empty());

  obs::MetricsRegistry::set_enabled(true);
  obs::metrics().counter("sim.eval_fallbacks").reset();
  DeviceOutput out = device.inject(s.pta_inputs[0].first);
  uint64_t fallbacks = obs::metrics().counter("sim.eval_fallbacks").value();
  obs::MetricsRegistry::set_enabled(false);

  EXPECT_GT(fallbacks, 0u);
  bool traced = false;
  for (const std::string& line : device.render_trace(out.trace)) {
    traced |= line.find("eval fallback -> 0") != std::string::npos;
  }
  EXPECT_TRUE(traced);
}

// --------------------------------------------------------- trace gating

TEST(TraceGating, CollectTraceFlagControlsRecording) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 2);
  Device device(compile(app.dp, app.rules, ctx), ctx);
  std::vector<DeviceInput> ins = make_inputs(app.dp, app.rules, 1, 3);
  DeviceOutput out;

  ExecArena off;
  off.collect_trace = false;
  device.run_batch({ins.data(), 1}, {&out, 1}, off);
  EXPECT_TRUE(out.trace.empty());

  ExecArena on;  // default: on (the driver's checker path)
  device.run_batch({ins.data(), 1}, {&out, 1}, on);
  EXPECT_FALSE(out.trace.empty());
}

}  // namespace
}  // namespace meissa::sim
