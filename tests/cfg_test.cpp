// Tests for CFG construction and concrete path evaluation.
#include <gtest/gtest.h>

#include "testlib.hpp"

namespace meissa::cfg {
namespace {

using testlib::concrete_run;
using testlib::ConcreteOutcome;

class Fig7Cfg : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig7_plane(ctx);
    rules = testlib::fig7_rules(3);
    g = build_cfg(dp, rules, ctx);
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  Cfg g;

  ir::ConcreteState base_input(uint64_t dst_ip) {
    ir::ConcreteState s;
    s[ctx.fields.require("hdr.eth.dst")] = 0x111111111111;
    s[ctx.fields.require("hdr.eth.src")] = 0x222222222222;
    s[ctx.fields.require("hdr.eth.type")] = 0x0800;
    s[ctx.fields.require("hdr.ipv4.dst")] = dst_ip;
    for (const char* f : {"ver_ihl", "tos", "len", "id", "frag", "ttl",
                          "proto", "csum", "src"}) {
      s[ctx.fields.require(std::string("hdr.ipv4.") + f)] = 0;
    }
    s[ctx.fields.require(std::string(p4::kIngressPort))] = 0;
    return s;
  }
};

TEST_F(Fig7Cfg, StructureIsWellFormedWithOneInstance) {
  ASSERT_EQ(g.instances().size(), 1u);
  EXPECT_EQ(g.instances()[0].name, "sw0.p0");
  EXPECT_EQ(g.instances()[0].emit_order,
            (std::vector<std::string>{"eth", "ipv4"}));
  EXPECT_GT(g.size(), 20u);
}

TEST_F(Fig7Cfg, PossiblePathCountMatchesTableProduct) {
  // Parser: {eth-only, eth+ipv4}; if-valid fork; tables (3+1)x(3+1).
  // eth-only goes through the else branch; eth+ipv4 through both tables.
  // Each then hits the drop-check fork (x2) at the instance exit.
  // possible = [1 (else) + 16 (then)] x 2 ... for both parse outcomes.
  double n = g.count_paths().value();
  EXPECT_EQ(n, (1 + 16 + 1 + 16) * 2.0);
}

TEST_F(Fig7Cfg, KnownHostIsForwardedWithRewrittenMac) {
  auto out = concrete_run(g, base_input(0x0a000001), ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kEmit);
  EXPECT_EQ(out->state.at(ctx.fields.require(std::string(p4::kEgressSpec))),
            2u);
  EXPECT_EQ(out->state.at(ctx.fields.require("hdr.eth.dst")),
            0xaa0000000001ull);
}

TEST_F(Fig7Cfg, UnknownHostIsDropped) {
  auto out = concrete_run(g, base_input(0x0afffffe), ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kDrop);
}

TEST_F(Fig7Cfg, NonIpPacketSkipsTablesAndEmits) {
  ir::ConcreteState s = base_input(0x0a000001);
  s[ctx.fields.require("hdr.eth.type")] = 0x86dd;
  auto out = concrete_run(g, s, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kEmit);
  // MAC untouched: tables were skipped.
  EXPECT_EQ(out->state.at(ctx.fields.require("hdr.eth.dst")),
            0x111111111111ull);
  // The instance-local validity of ipv4 stayed 0.
  EXPECT_EQ(out->state.at(g.instances()[0].validity.at("ipv4")), 0u);
}

TEST_F(Fig7Cfg, EvalPathRejectsWrongPath) {
  // Take the path driven by host 1 and check host 2's input cannot drive it.
  auto out1 = concrete_run(g, base_input(0x0a000001), ctx);
  ASSERT_TRUE(out1.has_value());
  auto replay = eval_path(g, out1->path, base_input(0x0a000002), ctx);
  EXPECT_FALSE(replay.has_value());
  auto ok = eval_path(g, out1->path, base_input(0x0a000001), ctx);
  EXPECT_TRUE(ok.has_value());
}

TEST_F(Fig7Cfg, InstancePathCountIsolatesThePipeline) {
  double n = g.count_instance_paths(0).value();
  // Within the instance: 2 parse outcomes x (1 + 16) control paths.
  EXPECT_EQ(n, 2 * 17.0);
}

class Fig8Cfg : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig8_plane(ctx);
    rules = testlib::fig8_rules();
    g = build_cfg(dp, rules, ctx);
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  Cfg g;

  ir::ConcreteState l4_input(uint64_t proto, uint64_t dport) {
    ir::ConcreteState s;
    s[ctx.fields.require("hdr.eth.dst")] = 1;
    s[ctx.fields.require("hdr.eth.src")] = 2;
    s[ctx.fields.require("hdr.eth.type")] = 0x0800;
    for (const char* f : {"ver_ihl", "tos", "len", "id", "frag", "ttl",
                          "csum", "src", "dst"}) {
      s[ctx.fields.require(std::string("hdr.ipv4.") + f)] = 0;
    }
    s[ctx.fields.require("hdr.ipv4.proto")] = proto;
    s[ctx.fields.require("hdr.tcp.sport")] = 1000;
    s[ctx.fields.require("hdr.tcp.dport")] = dport;
    s[ctx.fields.require("hdr.tcp.rest")] = 0;
    s[ctx.fields.require("hdr.udp.sport")] = 1000;
    s[ctx.fields.require("hdr.udp.dport")] = dport;
    s[ctx.fields.require("hdr.udp.len")] = 8;
    s[ctx.fields.require("hdr.udp.csum")] = 0;
    s[ctx.fields.require(std::string(p4::kIngressPort))] = 0;
    return s;
  }
};

TEST_F(Fig8Cfg, TcpTraversesBothPipelines) {
  auto out = concrete_run(g, l4_input(6, 443), ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kEmit);
  EXPECT_EQ(out->emit_instance, 1);  // left via the egress instance
  EXPECT_EQ(out->state.at(ctx.fields.require("meta.l4_kind")), 6u);
}

TEST_F(Fig8Cfg, UdpIsDroppedAtIngress) {
  auto out = concrete_run(g, l4_input(17, 53), ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kDrop);
}

TEST_F(Fig8Cfg, NonIpIsRejectedByParser) {
  ir::ConcreteState s = l4_input(6, 443);
  s[ctx.fields.require("hdr.eth.type")] = 0x0806;
  auto out = concrete_run(g, s, ctx);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->exit, ExitKind::kDrop);
}

TEST_F(Fig8Cfg, ValidityIsPerInstance) {
  auto out = concrete_run(g, l4_input(6, 443), ctx);
  ASSERT_TRUE(out.has_value());
  // TCP parsed in both instances; UDP in neither.
  EXPECT_EQ(out->state.at(g.instances()[0].validity.at("tcp")), 1u);
  EXPECT_EQ(out->state.at(g.instances()[1].validity.at("tcp")), 1u);
  EXPECT_EQ(out->state.at(g.instances()[0].validity.at("udp")), 0u);
  EXPECT_EQ(out->state.at(g.instances()[1].validity.at("udp")), 0u);
}

TEST(CfgValidate, RejectsCyclicTopology) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  dp.topology.edges.push_back({"sw0.eg", "sw0.ig", nullptr});
  EXPECT_THROW(p4::validate(dp, ctx), util::ValidationError);
}

TEST(CfgValidate, RejectsUnknownTableInControl) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  dp.program.pipelines[0].control.stmts.push_back(
      p4::ControlStmt::apply("no_such_table"));
  EXPECT_THROW(p4::validate(dp.program, ctx), util::ValidationError);
}

TEST(CfgValidate, RejectsRuleWithWrongArity) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(1);
  rules.entries[0].args = {};  // set_port expects one argument
  EXPECT_THROW(p4::validate_rules(dp.program, rules), util::ValidationError);
}

TEST(CfgValidate, RejectsOversizedExactMatch) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(1);
  rules.entries[1].matches[0] = p4::KeyMatch::exact(0x1ffffffffull);  // > 9 bit
  EXPECT_THROW(p4::validate_rules(dp.program, rules), util::ValidationError);
}

}  // namespace
}  // namespace meissa::cfg
