// Exhaustive FaultKind coverage: every injectable toolchain fault must be
// (a) actually injected by a Table-2 scenario and (b) *detected* by the
// driver on that scenario's demo app. The kind→scenario mapping below is a
// switch WITHOUT a default over sim::FaultKind, so adding a new kind
// without extending this test breaks the build under -Werror (the CI
// MEISSA_WERROR configuration) instead of silently shipping untested.
#include <gtest/gtest.h>

#include "apps/table2.hpp"
#include "sim/toolchain.hpp"

namespace meissa::apps {
namespace {

// Table-2 scenario exercising each fault kind (bugs #7-#16 are exactly the
// ten non-code bugs; see make_bug). kNone maps to 0 = "no scenario".
int bug_index_for(sim::FaultKind kind) {
  switch (kind) {
    case sim::FaultKind::kNone: return 0;
    case sim::FaultKind::kParserSkipSelect: return 7;
    case sim::FaultKind::kMaskFoldBug: return 8;
    case sim::FaultKind::kDropAssignment: return 9;
    case sim::FaultKind::kWrongDefaultAction: return 10;
    case sim::FaultKind::kAddCarryLeak: return 11;
    case sim::FaultKind::kWrongCompareWidth: return 12;
    case sim::FaultKind::kSwappedAssignments: return 13;
    case sim::FaultKind::kDropSetValid: return 14;
    case sim::FaultKind::kFieldOverlap: return 15;
    case sim::FaultKind::kSkipMetadataZero: return 16;
  }
  return -1;  // unreachable when the switch above is exhaustive
}

class FaultKindCoverage : public ::testing::TestWithParam<sim::FaultKind> {};

TEST_P(FaultKindCoverage, InjectableAndDetected) {
  const sim::FaultKind kind = GetParam();
  const int index = bug_index_for(kind);
  ASSERT_GE(index, 7) << "no Table-2 scenario maps to "
                      << sim::fault_kind_name(kind);

  ir::Context ctx;
  BugScenario bug = make_bug(ctx, index);
  // The scenario must inject exactly this kind (mapping stays honest).
  ASSERT_EQ(bug.fault.kind, kind) << "bug " << index << " injects "
                                  << sim::fault_kind_name(bug.fault.kind);
  const p4::DataPlane& dp = bug.bundle.dp;

  // Control: the same app compiled WITHOUT the fault passes end to end, so
  // any failure below is attributable to the injected fault.
  {
    sim::DeviceProgram clean = sim::compile(dp, bug.bundle.rules, ctx);
    sim::Device device(clean, ctx);
    driver::Meissa meissa(ctx, dp, bug.bundle.rules, {});
    driver::TestReport report = meissa.test(device, bug.bundle.intents);
    ASSERT_TRUE(report.all_passed())
        << "fault-free control run failed:\n" << report.str();
  }

  // Injected: the driver detects the fault — on the full run or on one of
  // the per-intent sub-case runs (the paper §6 workflow, as in Table 2).
  sim::DeviceProgram compiled = sim::compile(dp, bug.bundle.rules, ctx,
                                             bug.fault);
  sim::Device device(compiled, ctx);
  driver::Meissa meissa(ctx, dp, bug.bundle.rules, {});
  driver::TestReport report = meissa.test(device, bug.bundle.intents);
  bool detected = report.failed > 0;
  for (const spec::Intent& intent : bug.bundle.intents) {
    if (detected) break;
    driver::TestRunOptions sub;
    sub.gen.assumes = intent.assumes;
    driver::Meissa scoped(ctx, dp, bug.bundle.rules, sub);
    detected |= scoped.test(device, {intent}).failed > 0;
  }
  EXPECT_TRUE(detected) << "fault " << sim::fault_kind_name(kind)
                        << " (bug " << index << ", " << bug.name
                        << ") was injected but not detected";
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, FaultKindCoverage,
    ::testing::Values(sim::FaultKind::kParserSkipSelect,
                      sim::FaultKind::kMaskFoldBug,
                      sim::FaultKind::kDropAssignment,
                      sim::FaultKind::kWrongDefaultAction,
                      sim::FaultKind::kAddCarryLeak,
                      sim::FaultKind::kWrongCompareWidth,
                      sim::FaultKind::kSwappedAssignments,
                      sim::FaultKind::kDropSetValid,
                      sim::FaultKind::kFieldOverlap,
                      sim::FaultKind::kSkipMetadataZero),
    [](const ::testing::TestParamInfo<sim::FaultKind>& info) {
      std::string name = sim::fault_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace meissa::apps
