// Tests for the SMT layer: the SAT core, the domain fast path, the
// bit-blaster, incremental push/pop, and cross-checks against brute force
// and (when available) Z3.
#include <gtest/gtest.h>

#include <memory>

#include "smt/bv_solver.hpp"
#include "smt/sat.hpp"
#include "smt/solver.hpp"
#include "util/rng.hpp"

namespace meissa::smt {
namespace {

using ir::ArithOp;
using ir::CmpOp;
using ir::ExprRef;

// ---------------------------------------------------------------- SAT core

TEST(SatSolver, TrivialSatAndUnsat) {
  SatSolver s;
  Lit a = Lit::make(s.new_var(), false);
  Lit b = Lit::make(s.new_var(), false);
  s.add_binary(a, b);
  EXPECT_TRUE(s.solve({}));
  s.add_unit(~a);
  s.add_unit(~b);
  EXPECT_FALSE(s.solve({}));
}

TEST(SatSolver, AssumptionsDoNotPersist) {
  SatSolver s;
  Lit a = Lit::make(s.new_var(), false);
  Lit b = Lit::make(s.new_var(), false);
  s.add_binary(~a, b);  // a -> b
  EXPECT_TRUE(s.solve({a, ~b}) == false);  // a ∧ ¬b contradicts a -> b
  EXPECT_TRUE(s.solve({a}));
  EXPECT_TRUE(s.model_value(b.var()));
  EXPECT_TRUE(s.solve({~b}));  // earlier assumptions are gone
  EXPECT_FALSE(s.model_value(b.var()));
}

TEST(SatSolver, PigeonholeThreeIntoTwoIsUnsat) {
  // 3 pigeons, 2 holes: forces genuine conflict analysis.
  SatSolver s;
  Lit p[3][2];
  for (auto& row : p)
    for (Lit& l : row) l = Lit::make(s.new_var(), false);
  for (auto& row : p) s.add_binary(row[0], row[1]);
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_binary(~p[i][h], ~p[j][h]);
      }
    }
  }
  EXPECT_FALSE(s.solve({}));
}

TEST(SatSolver, RandomThreeSatAgreesWithBruteForce) {
  util::Rng rng(7);
  for (int round = 0; round < 60; ++round) {
    const int nvars = 8;
    const int nclauses = static_cast<int>(rng.range(10, 38));
    SatSolver s;
    std::vector<uint32_t> vars;
    for (int i = 0; i < nvars; ++i) vars.push_back(s.new_var());
    std::vector<std::vector<Lit>> clauses;
    for (int c = 0; c < nclauses; ++c) {
      std::vector<Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(Lit::make(vars[rng.below(nvars)], rng.chance(1, 2)));
      }
      clauses.push_back(cl);
      s.add_clause(cl);
    }
    bool brute = false;
    for (uint32_t m = 0; m < (1u << nvars) && !brute; ++m) {
      bool all = true;
      for (const auto& cl : clauses) {
        bool any = false;
        for (Lit l : cl) {
          // var index = vars[i]; map back by position
          for (int i = 0; i < nvars; ++i) {
            if (vars[static_cast<size_t>(i)] == l.var()) {
              bool v = (m >> i) & 1;
              if (v != l.sign()) any = true;
            }
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      if (all) brute = true;
    }
    EXPECT_EQ(s.solve({}), brute) << "round " << round;
  }
}

// --------------------------------------------------------------- Fast path

class BvSolverTest : public ::testing::Test {
 protected:
  ir::Context ctx;
  BvSolver solver{ctx};

  ExprRef fv(const char* name, int w) { return ctx.field_var(name, w); }
  ExprRef c(uint64_t v, int w) { return ctx.arena.constant(v, w); }
};

TEST_F(BvSolverTest, ExactMatchConflictIsUnsatViaFastPath) {
  ExprRef port = fv("srcPort", 16);
  solver.add(ctx.arena.cmp(CmpOp::kEq, port, c(80, 16)));
  solver.add(ctx.arena.cmp(CmpOp::kEq, port, c(443, 16)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
  EXPECT_EQ(solver.stats().fast_path_hits, 1u);
  EXPECT_EQ(solver.stats().sat_calls, 0u);
}

TEST_F(BvSolverTest, TernaryAndIntervalComposeInFastPath) {
  ExprRef ip = fv("dstIP", 32);
  // dstIP in 127.1.0.0/16, dstIP > 0x7f010050, dstIP != 0x7f010051
  solver.add(ctx.arena.masked_eq(ip, 0xffff0000u, 0x7f010000u));
  solver.add(ctx.arena.cmp(CmpOp::kGt, ip, c(0x7f010050u, 32)));
  solver.add(ctx.arena.cmp(CmpOp::kNe, ip, c(0x7f010051u, 32)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  Model m = solver.model();
  uint64_t v = m.at(ctx.fields.require("dstIP"));
  EXPECT_EQ(v & 0xffff0000u, 0x7f010000u);
  EXPECT_GT(v, 0x7f010050u);
  EXPECT_NE(v, 0x7f010051u);
}

TEST_F(BvSolverTest, EmptyIntervalIsUnsat) {
  ExprRef x = fv("x", 8);
  solver.add(ctx.arena.cmp(CmpOp::kGt, x, c(200, 8)));
  solver.add(ctx.arena.cmp(CmpOp::kLt, x, c(100, 8)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
}

TEST_F(BvSolverTest, ForcedBitsVsIntervalInteraction) {
  ExprRef x = fv("x", 8);
  // x & 0b1000_0000 == 0 (top bit clear) and x >= 200 -> impossible.
  solver.add(ctx.arena.masked_eq(x, 0x80, 0x00));
  solver.add(ctx.arena.cmp(CmpOp::kGe, x, c(200, 8)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
}

TEST_F(BvSolverTest, ValueSetDisjunctionsDecideInFastPath) {
  // (port == 8 || port == 72 || port == 200) && port >= 100
  ExprRef port = fv("eg_spec", 9);
  ExprRef set = ctx.arena.any_of({
      ctx.arena.cmp(ir::CmpOp::kEq, port, c(8, 9)),
      ctx.arena.cmp(ir::CmpOp::kEq, port, c(72, 9)),
      ctx.arena.cmp(ir::CmpOp::kEq, port, c(200, 9)),
  });
  solver.add(set);
  solver.push();
  solver.add(ctx.arena.cmp(ir::CmpOp::kGe, port, c(100, 9)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.model().at(ctx.fields.require("eg_spec")), 200u);
  EXPECT_EQ(solver.stats().sat_calls, 0u);  // pure fast path
  solver.pop();
  solver.push();
  solver.add(ctx.arena.cmp(ir::CmpOp::kGt, port, c(300, 9)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
  solver.pop();
}

TEST_F(BvSolverTest, ValueSetIntersectsWithExactMatch) {
  ExprRef f = fv("vni", 24);
  solver.add(ctx.arena.any_of({
      ctx.arena.cmp(ir::CmpOp::kEq, f, c(100, 24)),
      ctx.arena.cmp(ir::CmpOp::kEq, f, c(200, 24)),
  }));
  solver.add(ctx.arena.cmp(ir::CmpOp::kEq, f, c(200, 24)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.model().at(ctx.fields.require("vni")), 200u);
  solver.add(ctx.arena.cmp(ir::CmpOp::kNe, f, c(200, 24)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
}

TEST_F(BvSolverTest, MixedFieldDisjunctionGoesToSatCore) {
  ExprRef a = fv("a", 8);
  ExprRef b = fv("b", 8);
  solver.add(ctx.arena.bor(ctx.arena.cmp(ir::CmpOp::kEq, a, c(1, 8)),
                           ctx.arena.cmp(ir::CmpOp::kEq, b, c(2, 8))));
  solver.add(ctx.arena.cmp(ir::CmpOp::kNe, a, c(1, 8)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_GE(solver.stats().sat_calls, 1u);
  EXPECT_EQ(solver.model().at(ctx.fields.require("b")), 2u);
}

// ------------------------------------------------------------ SAT fallback

TEST_F(BvSolverTest, ArithmeticAcrossFieldsNeedsSatCore) {
  ExprRef a = fv("a", 8);
  ExprRef b = fv("b", 8);
  solver.add(ctx.arena.cmp(CmpOp::kEq, ctx.arena.arith(ArithOp::kAdd, a, b),
                           c(10, 8)));
  solver.add(ctx.arena.cmp(CmpOp::kGt, a, c(200, 8)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_GE(solver.stats().sat_calls, 1u);
  Model m = solver.model();
  uint64_t va = m.at(ctx.fields.require("a"));
  uint64_t vb = m.at(ctx.fields.require("b"));
  EXPECT_EQ((va + vb) & 0xff, 10u);
  EXPECT_GT(va, 200u);
}

TEST_F(BvSolverTest, DisjunctionNeedsSatCore) {
  ExprRef x = fv("x", 8);
  ExprRef p80 = ctx.arena.cmp(CmpOp::kEq, x, c(80, 8));
  ExprRef p443 = ctx.arena.cmp(CmpOp::kEq, x, c(44, 8));
  solver.add(ctx.arena.bor(p80, p443));
  solver.add(ctx.arena.cmp(CmpOp::kNe, x, c(80, 8)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.model().at(ctx.fields.require("x")), 44u);
}

TEST_F(BvSolverTest, MultiplicationSemantics) {
  ExprRef x = fv("x", 8);
  // 3 * x == 9 has solution x = 3 (and also wrapped ones); check model.
  solver.add(ctx.arena.cmp(
      CmpOp::kEq, ctx.arena.arith(ArithOp::kMul, x, c(3, 8)), c(9, 8)));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  uint64_t v = solver.model().at(ctx.fields.require("x"));
  EXPECT_EQ((v * 3) & 0xff, 9u);
}

TEST_F(BvSolverTest, VariableShiftSemantics) {
  ExprRef x = fv("x", 8);
  ExprRef k = fv("k", 8);
  // (x << k) == 0x80 with x odd forces k == 7.
  solver.add(ctx.arena.cmp(
      CmpOp::kEq, ctx.arena.arith(ArithOp::kShl, x, k), c(0x80, 8)));
  solver.add(ctx.arena.masked_eq(x, 0x01, 0x01));
  ASSERT_EQ(solver.check(), CheckResult::kSat);
  Model m = solver.model();
  uint64_t vx = m.at(ctx.fields.require("x"));
  uint64_t vk = m.at(ctx.fields.require("k"));
  uint64_t shifted = vk >= 8 ? 0 : (vx << vk) & 0xff;
  EXPECT_EQ(shifted, 0x80u);
}

TEST_F(BvSolverTest, ShiftBeyondWidthYieldsZero) {
  ExprRef x = fv("x", 8);
  ExprRef k = fv("k", 8);
  solver.add(ctx.arena.cmp(CmpOp::kGe, k, c(8, 8)));
  solver.add(ctx.arena.cmp(
      CmpOp::kNe, ctx.arena.arith(ArithOp::kShl, x, k), c(0, 8)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
}

// ------------------------------------------------------------- Incremental

TEST_F(BvSolverTest, PushPopRestoresSatisfiability) {
  ExprRef x = fv("x", 16);
  solver.add(ctx.arena.cmp(CmpOp::kEq, x, c(0x800, 16)));
  EXPECT_EQ(solver.check(), CheckResult::kSat);
  solver.push();
  solver.add(ctx.arena.cmp(CmpOp::kNe, x, c(0x800, 16)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
  solver.pop();
  EXPECT_EQ(solver.check(), CheckResult::kSat);
  EXPECT_EQ(solver.model().at(ctx.fields.require("x")), 0x800u);
}

TEST_F(BvSolverTest, DeepPushPopNesting) {
  ExprRef x = fv("x", 8);
  for (int i = 0; i < 6; ++i) {
    solver.push();
    solver.add(ctx.arena.cmp(CmpOp::kNe, x, c(static_cast<uint64_t>(i), 8)));
    EXPECT_EQ(solver.check(), CheckResult::kSat);
  }
  solver.push();
  // Pin x to a value excluded two levels down.
  solver.add(ctx.arena.cmp(CmpOp::kEq, x, c(3, 8)));
  EXPECT_EQ(solver.check(), CheckResult::kUnsat);
  solver.pop();
  for (int i = 0; i < 6; ++i) solver.pop();
  solver.add(ctx.arena.cmp(CmpOp::kEq, x, c(3, 8)));
  EXPECT_EQ(solver.check(), CheckResult::kSat);
}

// ----------------------------------------------- Cross-check vs brute force

// Property test: random conjunctions over two 6-bit fields, compared with
// exhaustive enumeration. Exercises fast path and SAT core both.
TEST(BvSolverProperty, AgreesWithBruteForceOnRandomConjunctions) {
  util::Rng rng(1234);
  for (int round = 0; round < 120; ++round) {
    ir::Context ctx;
    BvSolver solver(ctx);
    ExprRef x = ctx.field_var("x", 6);
    ExprRef y = ctx.field_var("y", 6);
    std::vector<ExprRef> conjuncts;
    const int n = static_cast<int>(rng.range(1, 5));
    for (int i = 0; i < n; ++i) {
      ExprRef lhs;
      switch (rng.below(4)) {
        case 0: lhs = x; break;
        case 1: lhs = y; break;
        case 2:
          lhs = ctx.arena.arith(ArithOp::kAdd, x, y);
          break;
        default:
          lhs = ctx.arena.arith(ArithOp::kAnd, x,
                                ctx.arena.constant(rng.bits(6), 6));
          break;
      }
      CmpOp op = static_cast<CmpOp>(rng.below(6));
      ExprRef atom = ctx.arena.cmp(op, lhs, ctx.arena.constant(rng.bits(6), 6));
      if (rng.chance(1, 4)) atom = ctx.arena.bnot(atom);
      conjuncts.push_back(atom);
      solver.add(atom);
    }
    bool brute = false;
    for (uint64_t vx = 0; vx < 64 && !brute; ++vx) {
      for (uint64_t vy = 0; vy < 64 && !brute; ++vy) {
        ir::ConcreteState s{{ctx.fields.require("x"), vx},
                            {ctx.fields.require("y"), vy}};
        bool all = true;
        for (ExprRef e : conjuncts) {
          auto v = ir::eval(e, s);
          if (!v || !*v) {
            all = false;
            break;
          }
        }
        if (all) brute = true;
      }
    }
    CheckResult r = solver.check();
    ASSERT_NE(r, CheckResult::kUnknown);
    EXPECT_EQ(r == CheckResult::kSat, brute) << "round " << round;
    if (r == CheckResult::kSat) {
      // The model must actually satisfy the conjunction.
      Model m = solver.model();
      ir::ConcreteState s;
      for (auto& [f, v] : m) s[f] = v;
      // Unconstrained fields default to zero.
      s.try_emplace(ctx.fields.require("x"), 0);
      s.try_emplace(ctx.fields.require("y"), 0);
      for (ExprRef e : conjuncts) {
        auto v = ir::eval(e, s);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, 1u) << "model violates conjunct in round " << round;
      }
    }
  }
}

// ------------------------------------------------------- Cross-check vs Z3

TEST(BvSolverVsZ3, RandomFormulasAgree) {
  if (!have_z3()) GTEST_SKIP() << "built without Z3";
  util::Rng rng(99);
  for (int round = 0; round < 80; ++round) {
    ir::Context ctx;
    auto ours = make_bv_solver(ctx);
    auto z3 = make_z3_solver(ctx);
    ExprRef x = ctx.field_var("x", 12);
    ExprRef y = ctx.field_var("y", 12);
    ExprRef z = ctx.field_var("z", 12);
    const ArithOp aops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul,
                            ArithOp::kAnd, ArithOp::kOr,  ArithOp::kXor,
                            ArithOp::kShl, ArithOp::kShr};
    auto rand_aexp = [&]() {
      ExprRef leaves[] = {x, y, z, ctx.arena.constant(rng.bits(12), 12)};
      ExprRef a = leaves[rng.below(4)];
      ExprRef b = leaves[rng.below(4)];
      return ctx.arena.arith(aops[rng.below(8)], a, b);
    };
    const int n = static_cast<int>(rng.range(1, 4));
    for (int i = 0; i < n; ++i) {
      ExprRef atom = ctx.arena.cmp(static_cast<CmpOp>(rng.below(6)),
                                   rand_aexp(), rand_aexp());
      if (rng.chance(1, 3)) {
        atom = ctx.arena.bor(atom, ctx.arena.cmp(static_cast<CmpOp>(rng.below(6)),
                                                 rand_aexp(), rand_aexp()));
      }
      ours->add(atom);
      z3->add(atom);
    }
    CheckResult a = ours->check();
    CheckResult b = z3->check();
    ASSERT_NE(a, CheckResult::kUnknown);
    ASSERT_NE(b, CheckResult::kUnknown);
    EXPECT_EQ(a, b) << "round " << round;
  }
}

}  // namespace
}  // namespace meissa::smt
