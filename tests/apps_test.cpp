// Tests for the application corpus: every program must pass its own
// end-to-end Meissa run on a clean compile (no false positives), with and
// without code summary, and the gateway family must exercise its
// multi-pipe topologies.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "sim/toolchain.hpp"

namespace meissa::apps {
namespace {

driver::TestReport clean_run(ir::Context& ctx, const AppBundle& app,
                             bool code_summary = true) {
  sim::DeviceProgram compiled = sim::compile(app.dp, app.rules, ctx);
  sim::Device device(compiled, ctx);
  driver::TestRunOptions opts;
  opts.gen.code_summary = code_summary;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  return meissa.test(device, app.intents);
}

TEST(Apps, RouterCleanRunPasses) {
  ir::Context ctx;
  AppBundle app = make_router(ctx, 8);
  driver::TestReport r = clean_run(ctx, app);
  EXPECT_GT(r.cases, 8u);
  EXPECT_TRUE(r.all_passed()) << r.str();
  EXPECT_EQ(r.gen.diagnostics, 0u);
}

TEST(Apps, RouterWithoutSummaryAgrees) {
  ir::Context ctx;
  AppBundle app = make_router(ctx, 6);
  driver::TestReport with = clean_run(ctx, app, true);
  ir::Context ctx2;
  AppBundle app2 = make_router(ctx2, 6);
  driver::TestReport without = clean_run(ctx2, app2, false);
  EXPECT_EQ(with.templates, without.templates);
  EXPECT_TRUE(with.all_passed()) << with.str();
  EXPECT_TRUE(without.all_passed()) << without.str();
}

TEST(Apps, MtagCleanRunPasses) {
  ir::Context ctx;
  AppBundle app = make_mtag(ctx, 6);
  driver::TestReport r = clean_run(ctx, app);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST(Apps, AclCleanRunPasses) {
  ir::Context ctx;
  AppBundle app = make_acl(ctx, 6, 6);
  driver::TestReport r = clean_run(ctx, app);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST(Apps, SwitchP4CleanRunPasses) {
  ir::Context ctx;
  SwitchP4Config cfg;
  cfg.l2_hosts = 4;
  cfg.routes = 4;
  cfg.ecmp_ways = 2;
  cfg.acls = 3;
  cfg.mpls_labels = 3;
  AppBundle app = make_switchp4(ctx, cfg);
  driver::TestReport r = clean_run(ctx, app);
  EXPECT_GT(r.templates, 10u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

class GatewayLevels : public ::testing::TestWithParam<int> {};

TEST_P(GatewayLevels, CleanRunPasses) {
  ir::Context ctx;
  GwConfig cfg;
  cfg.level = GetParam();
  cfg.elastic_ips = 4;
  AppBundle app = make_gateway(ctx, cfg);
  EXPECT_EQ(app.dp.topology.instances.size(),
            static_cast<size_t>(cfg.level == 1 ? 1
                                : cfg.level == 2 ? 2
                                : cfg.level == 3 ? 4
                                                 : 8));
  driver::TestReport r = clean_run(ctx, app);
  EXPECT_GT(r.cases, 4u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

INSTANTIATE_TEST_SUITE_P(Levels, GatewayLevels, ::testing::Values(1, 2, 3, 4));

TEST(Apps, Gw4CoversBothSwitches) {
  ir::Context ctx;
  GwConfig cfg;
  cfg.level = 4;
  cfg.elastic_ips = 4;
  AppBundle app = make_gateway(ctx, cfg);
  driver::TestRunOptions opts;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  auto templates = meissa.generate();
  // Some templates must leave via switch 1 (flow B) and some via switch 0.
  bool sw0 = false, sw1 = false;
  for (const auto& t : templates) {
    if (t.exit != cfg::ExitKind::kEmit) continue;
    int sw = meissa.graph()
                 .instances()[static_cast<size_t>(t.emit_instance)]
                 .switch_id;
    sw0 |= sw == 0;
    sw1 |= sw == 1;
  }
  EXPECT_TRUE(sw0);
  EXPECT_TRUE(sw1);
}

TEST(Apps, RuleSetScalingDoublesElasticIps) {
  EXPECT_EQ(elastic_ips_for_set(1), 8);
  EXPECT_EQ(elastic_ips_for_set(2), 16);
  EXPECT_EQ(elastic_ips_for_set(3), 32);
  EXPECT_EQ(elastic_ips_for_set(4), 64);
  ir::Context a, b2;
  GwConfig c1{1, elastic_ips_for_set(1), 5};
  GwConfig c2{1, elastic_ips_for_set(2), 5};
  AppBundle s1 = make_gateway(a, c1);
  AppBundle s2 = make_gateway(b2, c2);
  EXPECT_GT(s2.rules.loc(), s1.rules.loc());
}

TEST(Apps, ProgramLocGrowsWithLevel) {
  ir::Context ctx;
  size_t prev = 0;
  size_t prev_pipes = 0;
  for (int level = 1; level <= 4; ++level) {
    ir::Context c;
    GwConfig cfg;
    cfg.level = level;
    cfg.elastic_ips = 4;
    AppBundle app = make_gateway(c, cfg);
    size_t loc = app.dp.program.loc();
    // gw-4 reuses gw-3's program over twice the pipes/switches.
    EXPECT_GE(loc, prev) << "level " << level;
    EXPECT_GT(app.dp.topology.instances.size(), prev_pipes);
    prev = loc;
    prev_pipes = app.dp.topology.instances.size();
  }
}

}  // namespace
}  // namespace meissa::apps
