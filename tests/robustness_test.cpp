// Robustness of the testing pipeline itself: solver resource budgets and
// graceful degradation (kUnknown as a first-class verdict), cooperative
// cancellation, scope-underflow hardening, the flaky tester<->device link,
// and the retry/quarantine machinery in the driver.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <set>

#include "apps/apps.hpp"
#include "driver/sender.hpp"
#include "driver/tester.hpp"
#include "sim/link.hpp"
#include "sim/toolchain.hpp"
#include "smt/bv_solver.hpp"
#include "smt/sat.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"

namespace meissa {
namespace {

using smt::Lit;
using smt::ResourceLimits;
using smt::SatSolver;
using smt::SolveStatus;

// Pigeonhole n+1 pigeons into n holes: unsat, and proving it requires
// genuine conflict analysis (no root-level refutation), so a tiny conflict
// budget is guaranteed to be exhausted mid-search.
void add_pigeonhole(SatSolver& s, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Lit>> p(static_cast<size_t>(pigeons));
  for (auto& row : p) {
    for (int h = 0; h < holes; ++h) row.push_back(Lit::make(s.new_var(), false));
  }
  for (auto& row : p) s.add_clause(row);  // every pigeon sits somewhere
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        s.add_binary(~p[static_cast<size_t>(i)][static_cast<size_t>(h)],
                     ~p[static_cast<size_t>(j)][static_cast<size_t>(h)]);
      }
    }
  }
}

TEST(SatBudget, DefaultLimitsBehaveExactlyLikeSolve) {
  SatSolver s;
  Lit a = Lit::make(s.new_var(), false);
  Lit b = Lit::make(s.new_var(), false);
  s.add_binary(a, b);
  EXPECT_EQ(s.solve_limited({}, ResourceLimits{}), SolveStatus::kSat);
  s.add_unit(~a);
  s.add_unit(~b);
  EXPECT_EQ(s.solve_limited({}, ResourceLimits{}), SolveStatus::kUnsat);
}

TEST(SatBudget, ConflictLimitYieldsUnknownAndSolverStaysUsable) {
  SatSolver s;
  add_pigeonhole(s, 6);
  ResourceLimits tight;
  tight.max_conflicts = 1;
  EXPECT_EQ(s.solve_limited({}, tight), SolveStatus::kUnknown);
  // The same solver, unlimited, still proves unsat: giving up must leave
  // the clause database and trail consistent.
  EXPECT_EQ(s.solve_limited({}, ResourceLimits{}), SolveStatus::kUnsat);
}

TEST(SatBudget, PropagationLimitYieldsUnknown) {
  SatSolver s;
  add_pigeonhole(s, 6);
  ResourceLimits tight;
  tight.max_propagations = 1;
  EXPECT_EQ(s.solve_limited({}, tight), SolveStatus::kUnknown);
}

TEST(SatBudget, ExpiredDeadlineYieldsUnknown) {
  SatSolver s;
  add_pigeonhole(s, 6);
  ResourceLimits tight;
  tight.has_deadline = true;
  tight.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_EQ(s.solve_limited({}, tight), SolveStatus::kUnknown);
}

TEST(SatBudget, GenerousLimitsDoNotPerturbTheVerdict) {
  SatSolver s;
  add_pigeonhole(s, 4);
  ResourceLimits roomy;
  roomy.max_conflicts = 1u << 30;
  roomy.max_propagations = uint64_t{1} << 40;
  EXPECT_EQ(s.solve_limited({}, roomy), SolveStatus::kUnsat);
}

// ------------------------------------------------------- BvSolver budgets

// x ^ y == all-ones forces y == ~x, so (x & y) != 0 is unsat — but only
// conflict analysis over the bit-blasted circuit can prove it, which makes
// the formula a reliable budget-exhauster for the SAT core.
void assert_hard_unsat(smt::BvSolver& solver, ir::Context& ctx) {
  ir::ExprRef x = ctx.field_var("x", 32);
  ir::ExprRef y = ctx.field_var("y", 32);
  ir::ExprRef all = ctx.arena.constant(0xffffffffu, 32);
  ir::ExprRef zero = ctx.arena.constant(0, 32);
  solver.add(ctx.arena.cmp(ir::CmpOp::kEq,
                           ctx.arena.arith(ir::ArithOp::kXor, x, y), all));
  solver.add(ctx.arena.cmp(ir::CmpOp::kNe,
                           ctx.arena.arith(ir::ArithOp::kAnd, x, y), zero));
}

TEST(SolverBudget, ExhaustedCheckReturnsUnknownAndCountsIt) {
  ir::Context ctx;
  smt::BvSolver solver(ctx);
  assert_hard_unsat(solver, ctx);
  smt::Budget tiny;
  tiny.max_conflicts = 1;
  solver.set_budget(tiny);
  EXPECT_EQ(solver.check(), smt::CheckResult::kUnknown);
  EXPECT_EQ(solver.stats().unknowns, 1u);
}

TEST(SolverBudget, SolverRecoversWhenBudgetIsLifted) {
  ir::Context ctx;
  smt::BvSolver solver(ctx);
  assert_hard_unsat(solver, ctx);
  smt::Budget tiny;
  tiny.max_conflicts = 1;
  solver.set_budget(tiny);
  ASSERT_EQ(solver.check(), smt::CheckResult::kUnknown);
  // Restoring the unlimited budget on the *same* solver must produce the
  // real verdict: degradation is per-check, never sticky.
  solver.set_budget(smt::Budget{});
  EXPECT_EQ(solver.check(), smt::CheckResult::kUnsat);
}

TEST(SolverBudget, GenerousBudgetLeavesVerdictsUntouched) {
  ir::Context ctx;
  smt::BvSolver solver(ctx);
  assert_hard_unsat(solver, ctx);
  smt::Budget roomy;
  roomy.max_conflicts = 1u << 30;
  roomy.max_wall_ms = 300'000;
  solver.set_budget(roomy);
  EXPECT_EQ(solver.check(), smt::CheckResult::kUnsat);
  EXPECT_EQ(solver.stats().unknowns, 0u);
}

TEST(SolverBudget, MaxWallMsSaturatesInsteadOfOverflowing) {
  // Regression: the deadline used to be now + duration_cast(seconds), which
  // for astronomically large budgets overflowed steady_clock's range and
  // produced a deadline in the past — every check answered kUnknown
  // immediately. A UINT64_MAX budget must behave as "effectively unlimited".
  ir::Context ctx;
  smt::BvSolver solver(ctx);
  assert_hard_unsat(solver, ctx);
  smt::Budget huge;
  huge.max_wall_ms = UINT64_MAX;
  EXPECT_FALSE(huge.unlimited());  // the deadline machinery is exercised
  EXPECT_EQ(huge.deadline_after(std::chrono::steady_clock::now()),
            std::chrono::steady_clock::time_point::max());
  solver.set_budget(huge);
  EXPECT_EQ(solver.check(), smt::CheckResult::kUnsat);
  EXPECT_EQ(solver.stats().unknowns, 0u);
}

// --------------------------------------------------- scope-underflow guard

TEST(ScopeUnderflow, BvSolverPopWithoutPushThrowsInternalError) {
  ir::Context ctx;
  std::unique_ptr<smt::Solver> solver = smt::make_bv_solver(ctx);
  EXPECT_THROW(solver->pop(), util::InternalError);
  // A balanced push/pop works; the *extra* pop is what must throw.
  solver->push();
  solver->pop();
  EXPECT_THROW(solver->pop(), util::InternalError);
}

TEST(ScopeUnderflow, Z3PopWithoutPushThrowsInternalError) {
  if (!smt::have_z3()) GTEST_SKIP() << "built without Z3";
  ir::Context ctx;
  std::unique_ptr<smt::Solver> solver = smt::make_z3_solver(ctx);
  ASSERT_NE(solver, nullptr);
  EXPECT_THROW(solver->pop(), util::InternalError);
  solver->push();
  solver->pop();
  EXPECT_THROW(solver->pop(), util::InternalError);
}

// ------------------------------------------- degraded generation (gw-4)

apps::AppBundle multi_switch_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 4;  // 8 pipelines across 2 switches (gw-4, Fig. 1)
  cfg.elastic_ips = 2;
  return apps::make_gateway(ctx, cfg);
}

TEST(DegradedGeneration, TinyBudgetCompletesWithHonestAccounting) {
  // A starvation budget on the hardest demo app: generation must complete
  // without throwing, and every branch the DFS abandoned because of the
  // budget must be visible as degraded coverage rather than vanish.
  ir::Context ctx;
  apps::AppBundle app = multi_switch_app(ctx);
  driver::GenOptions opts;
  opts.smt_budget.max_conflicts = 1;
  opts.smt_budget.max_propagations = 1;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  const driver::GenStats& st = gen.stats();
  // Exact coverage is exactly the emitted templates.
  EXPECT_EQ(st.exact_paths, templates.size());
  EXPECT_EQ(st.exact_paths, st.templates);
  EXPECT_EQ(st.exact_paths, st.engine.valid_paths);
  EXPECT_EQ(st.degraded_paths, st.engine.degraded_paths);
  // The budget actually bit: some checks exhausted it, and the branches
  // they guarded were recorded as degraded instead of silently dropped.
  EXPECT_GT(st.smt_unknowns, 0u);
  EXPECT_GT(st.degraded_paths, 0u);
}

TEST(DegradedGeneration, UnlimitedBudgetReportsNoDegradation) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  driver::Generator gen(ctx, app.dp, app.rules, {});
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  EXPECT_FALSE(templates.empty());
  EXPECT_EQ(gen.stats().degraded_paths, 0u);
  EXPECT_EQ(gen.stats().smt_unknowns, 0u);
  EXPECT_EQ(gen.stats().exact_paths, templates.size());
}

// ---------------------------------------------------------- cancellation

TEST(Cancellation, PreCancelledTokenStopsGenerationEarly) {
  ir::Context ctx;
  apps::AppBundle app = multi_switch_app(ctx);
  util::CancelToken token;
  token.cancel();
  driver::GenOptions opts;
  opts.cancel = &token;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  EXPECT_TRUE(gen.stats().cancelled);
  EXPECT_TRUE(templates.empty());
}

TEST(Cancellation, UncancelledTokenIsTransparent) {
  util::CancelToken token;
  auto run = [&](const util::CancelToken* cancel) {
    ir::Context ctx;
    apps::AppBundle app = apps::make_router(ctx, 4);
    driver::GenOptions opts;
    opts.cancel = cancel;
    driver::Generator gen(ctx, app.dp, app.rules, opts);
    std::vector<sym::TestCaseTemplate> templates = gen.generate();
    EXPECT_FALSE(gen.stats().cancelled);
    return templates.size();
  };
  EXPECT_EQ(run(&token), run(nullptr));
}

TEST(Cancellation, TokenResetsForReuse) {
  util::CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

// ------------------------------------------------------- FlakyLink (unit)

// One concrete injectable case for the small router app, plus the device
// it runs on — the fixture every link test drives frames through.
struct RouterRig {
  ir::Context ctx;
  apps::AppBundle app;
  sim::Device device;
  driver::TestCase tc;
  sim::DeviceOutput clean;  // fault-free verdict for the case

  RouterRig()
      : app(apps::make_router(ctx, 2)),
        device(sim::compile(app.dp, app.rules, ctx), ctx) {
    driver::Generator gen(ctx, app.dp, app.rules, {});
    std::vector<sym::TestCaseTemplate> templates = gen.generate();
    driver::Sender sender(ctx, app.dp, gen.graph(), 1);
    for (const sym::TestCaseTemplate& t : templates) {
      std::optional<driver::TestCase> c = sender.concretize(t, gen.engine());
      if (!c || c->expect_drop) continue;
      tc = std::move(*c);
      device.set_registers(tc.registers);
      clean = device.inject(tc.input);
      if (clean.accepted && !clean.dropped) return;
    }
    ADD_FAILURE() << "router app produced no deliverable test case";
  }
};

TEST(FlakyLink, CertainDropDeliversNothing) {
  RouterRig rig;
  sim::LinkFaultSpec spec;
  spec.drop_rate = 1.0;
  sim::FlakyLink link(rig.device, spec);
  link.send(rig.tc.input);
  EXPECT_TRUE(link.collect().empty());
  EXPECT_EQ(link.stats().frames_sent, 1u);
  EXPECT_EQ(link.stats().dropped, 1u);
}

TEST(FlakyLink, CertainDuplicationDeliversTwice) {
  RouterRig rig;
  sim::LinkFaultSpec spec;
  spec.duplicate_rate = 1.0;
  sim::FlakyLink link(rig.device, spec);
  link.send(rig.tc.input);
  std::vector<sim::DeviceOutput> got = link.collect();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].bytes, rig.clean.bytes);
  EXPECT_EQ(got[1].bytes, rig.clean.bytes);
  EXPECT_EQ(link.stats().duplicated, 1u);
}

TEST(FlakyLink, ReorderedVerdictArrivesAtTheNextCollect) {
  RouterRig rig;
  sim::LinkFaultSpec spec;
  spec.reorder_rate = 1.0;
  sim::FlakyLink link(rig.device, spec);
  link.send(rig.tc.input);
  EXPECT_TRUE(link.collect().empty());  // held back
  std::vector<sim::DeviceOutput> late = link.collect();
  ASSERT_EQ(late.size(), 1u);
  EXPECT_EQ(late[0].bytes, rig.clean.bytes);
  EXPECT_EQ(link.stats().reordered, 1u);
}

TEST(FlakyLink, CorruptionFlipsExactlyOneTailBit) {
  RouterRig rig;
  sim::LinkFaultSpec spec;
  spec.corrupt_rate = 1.0;
  sim::FlakyLink link(rig.device, spec);
  link.send(rig.tc.input);
  std::vector<sim::DeviceOutput> got = link.collect();
  ASSERT_EQ(got.size(), 1u);
  ASSERT_EQ(got[0].bytes.size(), rig.clean.bytes.size());
  int flipped_bits = 0;
  size_t first_diff = rig.clean.bytes.size();
  for (size_t i = 0; i < rig.clean.bytes.size(); ++i) {
    uint8_t x = static_cast<uint8_t>(got[0].bytes[i] ^ rig.clean.bytes[i]);
    if (x == 0) continue;
    if (first_diff == rig.clean.bytes.size()) first_diff = i;
    for (; x != 0; x &= static_cast<uint8_t>(x - 1)) ++flipped_bits;
  }
  EXPECT_EQ(flipped_bits, 1);
  // Corruption is confined to the stamped payload tail (last 16 bytes), so
  // the driver's id+filler check can always detect it.
  EXPECT_GE(first_diff + 16, rig.clean.bytes.size());
  EXPECT_EQ(link.stats().corrupted, 1u);
}

TEST(FlakyLink, CertainInstallFailureReportsAndInstallsNothing) {
  RouterRig rig;
  sim::LinkFaultSpec spec;
  spec.install_fail_rate = 1.0;
  sim::FlakyLink link(rig.device, spec);
  EXPECT_FALSE(link.install_registers(rig.tc.registers));
  EXPECT_FALSE(link.install_registers(rig.tc.registers));
  EXPECT_EQ(link.stats().install_failures, 2u);
}

TEST(FlakyLink, SeededRunsAreReproducible) {
  auto counters = [](uint64_t seed) {
    RouterRig rig;
    sim::LinkFaultSpec spec;
    spec.drop_rate = 0.3;
    spec.duplicate_rate = 0.2;
    spec.seed = seed;
    sim::FlakyLink link(rig.device, spec);
    for (int i = 0; i < 200; ++i) {
      link.send(rig.tc.input);
      (void)link.collect();
    }
    return std::make_pair(link.stats().dropped, link.stats().duplicated);
  };
  EXPECT_EQ(counters(7), counters(7));
  EXPECT_NE(counters(7), counters(8));
}

// --------------------------------------------- driver retry & quarantine

TEST(LossyDriver, TransientInstallFailuresAreRetriedToConvergence) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::TestRunOptions opts;
  opts.link.install_fail_rate = 0.3;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  driver::TestReport report = meissa.test(device, app.intents);
  EXPECT_TRUE(report.all_passed()) << report.str();
  EXPECT_GT(report.install_retries, 0u);
  EXPECT_GT(report.link.install_failures, 0u);
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(LossyDriver, HopelessLinkQuarantinesInsteadOfHanging) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 2);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::TestRunOptions opts;
  opts.link.drop_rate = 1.0;  // nothing ever gets through
  opts.max_send_retries = 3;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  driver::TestReport report = meissa.test(device, app.intents);
  EXPECT_FALSE(report.all_passed());
  EXPECT_EQ(report.passed, 0u);
  EXPECT_EQ(report.failed, 0u);  // quarantine is not failure
  EXPECT_EQ(report.quarantined.size(), report.cases);
  EXPECT_FALSE(report.quarantined.empty());
  // Every case burned its full retry budget with exponential backoff.
  EXPECT_EQ(report.send_retries, 3 * report.cases);
  EXPECT_GT(report.backoff_units, report.send_retries / 2);
}

TEST(LossyDriver, BackoffJitterIsSeedDeterministic) {
  // The retry backoff carries seeded jitter: byte-identical per seed (two
  // runs agree exactly), and actually seed-dependent (across a pool of
  // seeds the schedules differ — a constant "jitter" would be a thundering
  // herd with extra steps).
  auto run = [](uint64_t seed) {
    ir::Context ctx;
    apps::AppBundle app = apps::make_router(ctx, 4);
    sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
    driver::TestRunOptions opts;
    opts.link.drop_rate = 1.0;  // every case burns its full retry budget
    opts.max_send_retries = 6;
    opts.seed = seed;
    driver::Meissa meissa(ctx, app.dp, app.rules, opts);
    return meissa.test(device, app.intents).backoff_units;
  };
  std::set<uint64_t> distinct;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const uint64_t units = run(seed);
    EXPECT_GT(units, 0u);
    EXPECT_EQ(units, run(seed)) << "seed " << seed;  // reproducible
    distinct.insert(units);
  }
  EXPECT_GT(distinct.size(), 1u);
}

// ------------------------------------------------- report bounds & JSON

TEST(Report, HashRepairBoundIsExplicitAndReported) {
  EXPECT_EQ(driver::Sender::kMaxHashRepairRounds, 3);
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::Meissa meissa(ctx, app.dp, app.rules, {});
  driver::TestReport report = meissa.test(device, app.intents);
  // The repair loop is bounded per case, so attempts can never exceed
  // rounds x concretized cases.
  EXPECT_LE(report.hash_repair_attempts,
            static_cast<uint64_t>(driver::Sender::kMaxHashRepairRounds) *
                (report.cases + report.removed_by_hash));
  std::string json = report.to_json();
  EXPECT_NE(json.find("\"hash_repair_attempts\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"removed_by_hash\":"), std::string::npos) << json;
}

TEST(Report, JsonCarriesRobustnessCounters) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 2);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::TestRunOptions opts;
  opts.link.drop_rate = 0.2;
  opts.link.seed = 11;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  driver::TestReport report = meissa.test(device, app.intents);
  std::string json = report.to_json();
  for (const char* key :
       {"\"templates\":", "\"cases\":", "\"passed\":", "\"failed\":",
        "\"exact_paths\":", "\"degraded_paths\":", "\"smt_unknowns\":",
        "\"send_retries\":", "\"install_retries\":", "\"dedup_dropped\":",
        "\"corruption_detected\":", "\"backoff_units\":", "\"quarantined\":",
        "\"link\":", "\"frames_sent\":", "\"dropped\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing in\n"
                                                 << json;
  }
}

}  // namespace
}  // namespace meissa
