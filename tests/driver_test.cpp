// Unit tests for the driver layer: sender concretization, expected-output
// computation, hash-obligation filtering, reports, and traces.
#include <gtest/gtest.h>

#include "driver/tester.hpp"
#include "sim/toolchain.hpp"
#include "testlib.hpp"

namespace meissa::driver {
namespace {

class SenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig7_plane(ctx);
    rules = testlib::fig7_rules(2);
    gen = std::make_unique<Generator>(ctx, dp, rules, GenOptions{});
    templates = gen->generate();
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  std::unique_ptr<Generator> gen;
  std::vector<sym::TestCaseTemplate> templates;
};

TEST_F(SenderTest, ConcretizesEveryTemplate) {
  Sender sender(ctx, dp, gen->graph());
  size_t made = 0;
  for (const auto& t : templates) {
    auto tc = sender.concretize(t, gen->engine());
    ASSERT_TRUE(tc.has_value()) << "template " << t.id;
    ++made;
    // Input packets are well-formed wire bytes with the unique-id payload.
    EXPECT_GE(tc->input.bytes.size(), 14u);
    EXPECT_GE(tc->input_packet.payload.size(), 16u);
    // Case ids are unique and embedded in the payload.
    uint64_t id = 0;
    for (int i = 0; i < 8; ++i) {
      id = (id << 8) | tc->input_packet.payload[static_cast<size_t>(i)];
    }
    EXPECT_EQ(id, tc->case_id);
  }
  EXPECT_EQ(made, templates.size());
  EXPECT_EQ(sender.removed_by_hash(), 0u);
}

TEST_F(SenderTest, ExpectedOutputsMatchTheDevice) {
  Sender sender(ctx, dp, gen->graph());
  sim::Device device(sim::compile(dp, rules, ctx), ctx);
  for (const auto& t : templates) {
    auto tc = sender.concretize(t, gen->engine());
    ASSERT_TRUE(tc.has_value());
    device.set_registers(tc->registers);
    sim::DeviceOutput out = device.inject(tc->input);
    if (tc->expect_drop) {
      EXPECT_TRUE(out.dropped);
    } else {
      ASSERT_FALSE(out.dropped);
      EXPECT_EQ(out.port, tc->expect_port);
      EXPECT_EQ(out.bytes, tc->expect_bytes);
    }
  }
}

TEST_F(SenderTest, DistinctTemplatesGetDistinctInputs) {
  Sender sender(ctx, dp, gen->graph());
  std::vector<std::vector<uint8_t>> inputs;
  for (const auto& t : templates) {
    auto tc = sender.concretize(t, gen->engine());
    ASSERT_TRUE(tc.has_value());
    // Strip the unique-id payload before comparing path-driving content.
    std::vector<uint8_t> content(
        tc->input.bytes.begin(),
        tc->input.bytes.end() - static_cast<long>(tc->input_packet.payload.size()));
    inputs.push_back(std::move(content));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    for (size_t j = i + 1; j < inputs.size(); ++j) {
      EXPECT_NE(inputs[i], inputs[j])
          << "templates " << i << " and " << j
          << " generated identical driving content";
    }
  }
}

TEST(ReportTest, SummaryStringIsInformative) {
  TestReport r;
  r.templates = 3;
  r.cases = 3;
  r.passed = 2;
  r.failed = 1;
  r.removed_by_hash = 1;
  CaseRecord rec;
  rec.template_id = 7;
  rec.case_id = 9;
  rec.model_problems = {"wrong egress port: expected 1, got 2"};
  rec.intent_problems = {"[x] violated: expect y"};
  r.failures.push_back(rec);
  std::string s = r.str();
  EXPECT_NE(s.find("2/3"), std::string::npos);
  EXPECT_NE(s.find("removed by hash"), std::string::npos);
  EXPECT_NE(s.find("FAIL template #7"), std::string::npos);
  EXPECT_NE(s.find("[model]"), std::string::npos);
  EXPECT_NE(s.find("[intent]"), std::string::npos);
  EXPECT_FALSE(r.all_passed());
}

TEST(TraceTest, SymbolicTraceShowsValuesAndVerdicts) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(1);
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
  ir::ConcreteState in;
  in[ctx.fields.require("hdr.eth.type")] = 0x0800;
  in[ctx.fields.require("hdr.ipv4.dst")] = 0x0a000000;
  for (ir::FieldId f = 0; f < ctx.fields.size(); ++f) in.try_emplace(f, 0);
  auto out = testlib::concrete_run(g, in, ctx);
  ASSERT_TRUE(out.has_value());
  std::string trace = symbolic_trace(ctx, g, out->path, in, 500);
  EXPECT_NE(trace.find("assume"), std::string::npos);
  EXPECT_NE(trace.find("[= "), std::string::npos);
  EXPECT_NE(trace.find("=> true"), std::string::npos);
  // Truncation guard.
  std::string truncated = symbolic_trace(ctx, g, out->path, in, 2);
  EXPECT_NE(truncated.find("truncated"), std::string::npos);
}

TEST(GeneratorTest, MaxTemplatesAndAssumesCompose) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  GenOptions opts;
  opts.max_templates = 2;
  Generator g(ctx, dp, rules, opts);
  EXPECT_EQ(g.generate().size(), 2u);
  EXPECT_EQ(g.stats().templates, 2u);
  EXPECT_GT(g.stats().paths_original.value(), 0.0);
}

TEST(GeneratorTest, ActionCoverModeBuildsSymbolicArgs) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  GenOptions opts;
  opts.code_summary = false;
  opts.build.table_mode = cfg::BuildOptions::TableMode::kActionCover;
  Generator g(ctx, dp, rules, opts);
  auto templates = g.generate();
  // Branch structure is per-action, independent of the 3 installed rules:
  // the ipv4 path explores |actions|+1 per table.
  EXPECT_GT(templates.size(), 4u);
  // Some template constrains an action parameter symbolically.
  bool saw_arg = false;
  for (const auto& t : templates) {
    for (const auto& [f, v] : t.final_values) {
      saw_arg |= ctx.fields.name(f).rfind("ig.eg_spec", 0) == 0 &&
                 !v->is_const();
    }
  }
  EXPECT_TRUE(saw_arg) << "action-cover mode should leave args symbolic";
}

}  // namespace
}  // namespace meissa::driver
