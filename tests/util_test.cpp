// Tests for the util module: bit helpers, BigCount arithmetic, strings,
// and the deterministic RNG.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/big_count.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"

namespace meissa::util {
namespace {

TEST(Bits, MasksAndTruncation) {
  EXPECT_EQ(mask_bits(1), 1u);
  EXPECT_EQ(mask_bits(9), 0x1ffu);
  EXPECT_EQ(mask_bits(64), ~uint64_t{0});
  EXPECT_EQ(truncate(0x1ff, 8), 0xffu);
  EXPECT_TRUE(fits(255, 8));
  EXPECT_FALSE(fits(256, 8));
  EXPECT_TRUE(bit_at(0b100, 2));
  EXPECT_FALSE(bit_at(0b100, 1));
  EXPECT_THROW(check_width(0), InternalError);
  EXPECT_THROW(check_width(65), InternalError);
}

TEST(BigCount, ExactWhileSmallLogBeyond) {
  BigCount c = BigCount::of(68);
  EXPECT_TRUE(c.is_exact());
  EXPECT_EQ(c.value(), 68.0);  // exactly, no pow() round-trip
  EXPECT_EQ(c.str(), "68");

  BigCount big = BigCount::of(1);
  for (int i = 0; i < 100; ++i) big *= BigCount::of(100);  // 10^200
  EXPECT_FALSE(big.is_exact());
  EXPECT_NEAR(big.log10(), 200.0, 0.5);
  EXPECT_EQ(big.str().rfind("10^", 0), 0u);
}

TEST(BigCount, SumAndProductLaws) {
  BigCount a = BigCount::of(1000);
  BigCount b = BigCount::of(24);
  EXPECT_EQ((a + b).value(), 1024.0);
  EXPECT_EQ((a * b).value(), 24000.0);
  EXPECT_TRUE((BigCount::zero() * a).is_zero());
  EXPECT_EQ((BigCount::zero() + a).value(), 1000.0);
  // Log-domain addition stays accurate for large values.
  BigCount big = BigCount::of(1);
  for (int i = 0; i < 30; ++i) big *= BigCount::of(10);
  BigCount twice = big + big;
  EXPECT_NEAR(twice.log10() - big.log10(), std::log10(2.0), 1e-9);
}

TEST(Strings, SplitTrimAffixes) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x y\t\n"), "x y");
  EXPECT_TRUE(starts_with("hdr.ipv4.dst", "hdr."));
  EXPECT_TRUE(ends_with("hdr.ipv4.$valid", ".$valid"));
  EXPECT_FALSE(ends_with("x", "longer"));
  EXPECT_EQ(hex(0xbeef), "0xbeef");
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3);
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_GE(resolve_threads(0), 1);  // hardware concurrency, at least 1
}

TEST(ThreadPool, RunCoversEveryIndexOnce) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 100;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads
                                   << " threads";
    }
  }
}

TEST(ThreadPool, ReusableAcrossRuns) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    pool.run(10, [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 50);
}

TEST(ThreadPool, RethrowsFirstTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.run(8, [](size_t i) {
        if (i == 3) throw std::runtime_error("task failed");
      }),
      std::runtime_error);
  // The pool survives the exception and keeps working.
  std::atomic<int> total{0};
  pool.run(4, [&](size_t) { ++total; });
  EXPECT_EQ(total.load(), 4);
}

TEST(ThreadPool, InlinePathMatchesPooledExceptionSemantics) {
  // threads=1 runs tasks inline; it must still run *every* task and
  // rethrow the first exception afterwards, exactly like the pooled path
  // — otherwise threads=1 would complete fewer tasks than threads=N.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  try {
    pool.run(8, [&](size_t i) {
      ++ran;
      if (i == 2) throw std::runtime_error("first");
      if (i == 5) throw std::logic_error("second");
    });
    FAIL() << "expected the first exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(ran.load(), 8);
  // And the pool is still usable afterwards.
  pool.run(3, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 11);
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
    EXPECT_TRUE(fits(r.bits(9), 9));
  }
}

}  // namespace
}  // namespace meissa::util
