// Unit tests for the intent layer: applicability, each expectation kind,
// the in./out. namespaces, and assume-to-precondition conversion.
#include <gtest/gtest.h>

#include "apps/demos.hpp"
#include "spec/intent.hpp"

namespace meissa::spec {
namespace {

class SpecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = apps::demos::make_fig7_plane(ctx);
    const p4::HeaderDef* eth = dp.program.find_header("eth");
    const p4::HeaderDef* ipv4 = dp.program.find_header("ipv4");
    packet::HeaderValues e;
    e.header = "eth";
    e.values = {0x1111, 0x2222, 0x0800};
    packet::HeaderValues i;
    i.header = "ipv4";
    i.values.assign(ipv4->fields.size(), 0);
    obs.prog = &dp.program;
    obs.input.headers = {e, i};
    obs.input.find("ipv4")->set_field(*ipv4, "dst", 0x0a000001);
    obs.in_port = 3;
    obs.delivered = true;
    obs.output = obs.input;
    obs.output.find("eth")->set_field(*eth, "dst", 0xaa01);
    obs.out_port = 7;
  }

  ir::Context ctx;
  p4::DataPlane dp;
  Observation obs;
};

TEST_F(SpecTest, ApplicabilityFollowsAssumes) {
  IntentBuilder match(ctx, dp.program, "m");
  match.assume(ctx.arena.cmp(ir::CmpOp::kEq, match.in("hdr.ipv4.dst"),
                             match.num(0x0a000001, 32)));
  Intent match_intent = match.build();  // build() moves the intent out
  EXPECT_TRUE(applicable(match_intent, obs, ctx));

  IntentBuilder mismatch(ctx, dp.program, "n");
  mismatch.assume(ctx.arena.cmp(ir::CmpOp::kEq, mismatch.in("hdr.ipv4.dst"),
                                mismatch.num(0x0a000002, 32)));
  EXPECT_FALSE(applicable(mismatch.build(), obs, ctx));

  // An assume over a header absent from the input is not applicable.
  Observation eth_only = obs;
  eth_only.input.headers.resize(1);
  EXPECT_FALSE(applicable(match_intent, eth_only, ctx));
}

TEST_F(SpecTest, FieldExpectationsRelateInputAndOutput) {
  IntentBuilder ib(ctx, dp.program, "rewrite");
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.out("hdr.eth.dst"),
                          ib.num(0xaa01, 48)));
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.out("hdr.ipv4.dst"),
                          ib.in("hdr.ipv4.dst")));
  EXPECT_TRUE(check(ib.build(), obs, ctx).empty());

  IntentBuilder bad(ctx, dp.program, "bad");
  bad.expect(ctx.arena.cmp(ir::CmpOp::kEq, bad.out("hdr.eth.dst"),
                           bad.num(0xbb02, 48)));
  auto failures = check(bad.build(), obs, ctx);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_NE(failures[0].find("violated"), std::string::npos);
}

TEST_F(SpecTest, PortExpectations) {
  IntentBuilder ib(ctx, dp.program, "port");
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.out_port(), ib.num(7, 9)));
  ib.expect(ctx.arena.cmp(ir::CmpOp::kEq, ib.in_port(), ib.num(3, 9)));
  EXPECT_TRUE(check(ib.build(), obs, ctx).empty());
}

TEST_F(SpecTest, DeliveryExpectations) {
  IntentBuilder want_drop(ctx, dp.program, "d");
  want_drop.expect_dropped();
  EXPECT_FALSE(check(want_drop.build(), obs, ctx).empty());

  Observation dropped = obs;
  dropped.delivered = false;
  EXPECT_TRUE(check(want_drop.build(), dropped, ctx).empty());

  IntentBuilder want_del(ctx, dp.program, "e");
  want_del.expect_delivered();
  EXPECT_FALSE(check(want_del.build(), dropped, ctx).empty());
  // Output-relating expectations are delivery-gated: no double report.
  IntentBuilder gated(ctx, dp.program, "g");
  gated.expect(ctx.arena.cmp(ir::CmpOp::kEq, gated.out("hdr.eth.dst"),
                             gated.num(1, 48)));
  EXPECT_TRUE(check(gated.build(), dropped, ctx).empty());
}

TEST_F(SpecTest, HeaderPresenceExpectations) {
  IntentBuilder ib(ctx, dp.program, "h");
  ib.expect_header("ipv4", true);
  EXPECT_TRUE(check(ib.build(), obs, ctx).empty());
  IntentBuilder absent(ctx, dp.program, "a");
  absent.expect_header("ipv4", false);
  EXPECT_FALSE(check(absent.build(), obs, ctx).empty());
}

TEST_F(SpecTest, ChecksumExpectationRecomputes) {
  IntentBuilder ib(ctx, dp.program, "c");
  ib.expect_checksum("hdr.ipv4.csum", {"hdr.ipv4.src", "hdr.ipv4.dst"});
  // Wrong (zero) checksum in the output -> flagged.
  auto failures = check(ib.build(), obs, ctx);
  ASSERT_FALSE(failures.empty());
  EXPECT_NE(failures[0].find("checksum error"), std::string::npos);
  // Fix it up and re-check.
  const p4::HeaderDef* ipv4 = dp.program.find_header("ipv4");
  uint64_t want = p4::compute_hash(
      p4::HashAlgo::kCsum16,
      {obs.output.find("ipv4")->field(*ipv4, "src"),
       obs.output.find("ipv4")->field(*ipv4, "dst")},
      {32, 32}, 16);
  obs.output.find("ipv4")->set_field(*ipv4, "csum", want);
  EXPECT_TRUE(check(ib.build(), obs, ctx).empty());
}

TEST_F(SpecTest, AssumeToPreconditionRenamesFields) {
  IntentBuilder ib(ctx, dp.program, "r");
  ir::ExprRef a = ctx.arena.band(
      ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.dst"),
                    ib.num(0x0a000001, 32)),
      ctx.arena.cmp(ir::CmpOp::kLt, ib.in_port(), ib.num(8, 9)));
  ir::ExprRef pre = assume_to_precondition(a, ctx);
  std::unordered_set<ir::FieldId> fs;
  ir::collect_fields(pre, fs);
  EXPECT_TRUE(fs.count(ctx.fields.require("hdr.ipv4.dst")));
  EXPECT_TRUE(fs.count(ctx.fields.require(std::string(p4::kIngressPort))));
  for (ir::FieldId f : fs) {
    EXPECT_EQ(ctx.fields.name(f).rfind("in.", 0), std::string::npos)
        << "unrenamed intent field in precondition";
  }
}

TEST_F(SpecTest, BuilderRejectsUnknownFields) {
  IntentBuilder ib(ctx, dp.program, "x");
  EXPECT_THROW(ib.in("hdr.nope.field"), util::ValidationError);
  EXPECT_THROW(ib.expect_header("nope", true), util::InternalError);
}

}  // namespace
}  // namespace meissa::spec
