// The ground-truth bug corpus: injection-site analysis liveness, manifest
// determinism across thread counts, witness-replay triggerability, the
// legacy Table-2 conversion, the survival harness, the constant-guard
// lint, and the IntendedVariantClean property (every corrected Table-2
// bundle is divergence-free against itself and summarizes soundly).
#include <gtest/gtest.h>

#include <set>

#include "analysis/inject.hpp"
#include "analysis/lint.hpp"
#include "analysis/validate.hpp"
#include "apps/corpus.hpp"
#include "apps/survival.hpp"
#include "apps/table2.hpp"
#include "cfg/build.hpp"
#include "fuzz/fuzz.hpp"
#include "sim/toolchain.hpp"
#include "summary/summary.hpp"

namespace meissa::apps {
namespace {

AppBundle router_app(ir::Context& ctx) { return make_router(ctx, 6); }

corpus::CorpusOptions fast_opts() {
  corpus::CorpusOptions opts;
  opts.witness_templates = 256;
  opts.summary_variants = false;  // keep the solver out of the hot tests
  return opts;
}

// ------------------------------------------------- injection-site analysis

TEST(InjectionSites, RouterEnumeratesLiveKinds) {
  ir::Context ctx;
  AppBundle app = router_app(ctx);
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  analysis::InjectResult r =
      analysis::find_injection_sites(ctx, app.dp, app.rules, g);
  ASSERT_FALSE(r.sites.empty());
  EXPECT_GT(r.by_kind[static_cast<int>(analysis::SiteKind::kTableEntry)], 0u);
  EXPECT_GT(r.by_kind[static_cast<int>(analysis::SiteKind::kToolchain)], 0u);
  EXPECT_GE(r.considered, r.sites.size() + r.dead);
  for (const analysis::InjectionSite& s : r.sites) {
    EXPECT_FALSE(s.liveness.empty()) << "site " << s.id;
    if (s.kind != analysis::SiteKind::kSummary) {
      EXPECT_NE(s.node, cfg::kNoNode) << "site " << s.id;
    }
  }
}

TEST(InjectionSites, EnumerationIsDeterministic) {
  ir::Context ctx;
  AppBundle app = router_app(ctx);
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  analysis::InjectResult a =
      analysis::find_injection_sites(ctx, app.dp, app.rules, g);
  analysis::InjectResult b =
      analysis::find_injection_sites(ctx, app.dp, app.rules, g);
  ASSERT_EQ(a.sites.size(), b.sites.size());
  for (size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_EQ(a.sites[i].id, b.sites[i].id);
    EXPECT_EQ(a.sites[i].kind, b.sites[i].kind);
    EXPECT_EQ(a.sites[i].ref, b.sites[i].ref);
    EXPECT_EQ(a.sites[i].index, b.sites[i].index);
    EXPECT_EQ(a.sites[i].liveness, b.sites[i].liveness);
  }
}

// ------------------------------------------------------- constant-guard

// A vacuous if inserted into a demo pipeline must trip the lint: the
// guard `field >= 0` is provably always true (unsigned), so the else arm
// is dead. The untouched program stays clean of the code.
TEST(Lint, ConstantGuardFiresOnVacuousIf) {
  ir::Context ctx;
  AppBundle app = router_app(ctx);
  {
    cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
    for (const analysis::Diagnostic& d :
         analysis::lint_cfg(ctx, g).diagnostics) {
      EXPECT_NE(d.code, "constant-guard") << d.message;
    }
  }
  ASSERT_FALSE(app.dp.program.pipelines.empty());
  p4::PipelineDef& pipe = app.dp.program.pipelines.front();
  ASSERT_FALSE(app.dp.program.headers.empty());
  const p4::HeaderDef& hdr = app.dp.program.headers.front();
  ASSERT_FALSE(hdr.fields.empty());
  const std::string fname = "hdr." + hdr.name + "." + hdr.fields.front().name;
  const ir::FieldId f = ctx.fields.find(fname);
  ASSERT_NE(f, ir::kInvalidField) << fname;
  const int w = ctx.fields.width(f);
  p4::ControlBlock then_block;  // empty arms: the branch is pure control
  pipe.control.stmts.insert(
      pipe.control.stmts.begin(),
      p4::ControlStmt::if_else(
          ctx.arena.cmp(ir::CmpOp::kGe, ctx.var(f),
                        ctx.arena.constant(0, w)),
          then_block));
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  bool fired = false;
  for (const analysis::Diagnostic& d :
       analysis::lint_cfg(ctx, g).diagnostics) {
    if (d.code == "constant-guard") {
      fired = true;
      EXPECT_NE(d.message.find("always true"), std::string::npos)
          << d.message;
    }
  }
  EXPECT_TRUE(fired);
}

// ------------------------------------------------------------ the corpus

TEST(Corpus, ManifestByteIdenticalAcrossThreadCounts) {
  corpus::CorpusOptions opts = fast_opts();
  opts.seed = 7;
  opts.threads = 1;
  ir::Context ctx1;
  AppBundle app1 = router_app(ctx1);
  corpus::BugCorpus c1 = corpus::build_corpus(ctx1, app1, opts);

  opts.threads = 4;
  ir::Context ctx2;
  AppBundle app2 = router_app(ctx2);
  corpus::BugCorpus c2 = corpus::build_corpus(ctx2, app2, opts);

  ASSERT_FALSE(c1.variants.empty());
  EXPECT_EQ(corpus::manifest_json(c1), corpus::manifest_json(c2));
}

TEST(Corpus, WitnessReplayRetriggersEveryVariant) {
  ir::Context ctx;
  AppBundle app = router_app(ctx);
  corpus::BugCorpus c = corpus::build_corpus(ctx, app, fast_opts());
  ASSERT_FALSE(c.variants.empty());
  size_t replayed = 0, triggered = 0;
  for (const corpus::BugVariant& v : c.variants) {
    if (v.kind == corpus::MutationKind::kSummary) continue;
    ASSERT_TRUE(v.confirmed) << v.vid;
    ++replayed;
    sim::Device buggy(sim::compile(v.dp, v.rules, ctx, v.fault), ctx);
    sim::Device clean(sim::compile(app.dp, app.rules, ctx), ctx);
    buggy.set_registers(v.witness_registers);
    clean.set_registers(v.witness_registers);
    const sim::DeviceOutput t = buggy.inject(v.witness);
    const sim::DeviceOutput r = clean.inject(v.witness);
    const bool diverges = t.accepted != r.accepted || t.dropped != r.dropped ||
                          (!t.dropped && t.accepted &&
                           (t.port != r.port || t.bytes != r.bytes));
    if (diverges) ++triggered;
  }
  ASSERT_GT(replayed, 0u);
  // The acceptance gate is >= 90%; by construction replay should re-trigger
  // every confirmed variant.
  EXPECT_GE(triggered * 10, replayed * 9)
      << triggered << "/" << replayed << " witnesses re-triggered";
}

TEST(Corpus, AtLeastTwoHundredVariantsAcrossDemoApps) {
  const corpus::CorpusOptions opts = fast_opts();
  size_t total = 0;
  {
    ir::Context ctx;
    AppBundle app = make_router(ctx, 6);
    total += corpus::build_corpus(ctx, app, opts).variants.size();
  }
  {
    ir::Context ctx;
    AppBundle app = make_mtag(ctx, 4);
    total += corpus::build_corpus(ctx, app, opts).variants.size();
  }
  {
    ir::Context ctx;
    AppBundle app = make_acl(ctx, 4, 4);
    total += corpus::build_corpus(ctx, app, opts).variants.size();
  }
  {
    ir::Context ctx;
    SwitchP4Config cfg;
    cfg.l2_hosts = 4;
    cfg.routes = 4;
    cfg.ecmp_ways = 2;
    cfg.acls = 4;
    cfg.mpls_labels = 4;
    AppBundle app = make_switchp4(ctx, cfg);
    total += corpus::build_corpus(ctx, app, opts).variants.size();
  }
  for (int level : {3, 4}) {
    ir::Context ctx;
    GwConfig cfg;
    cfg.level = level;
    cfg.elastic_ips = 4;
    AppBundle app = make_gateway(ctx, cfg);
    total += corpus::build_corpus(ctx, app, opts).variants.size();
  }
  EXPECT_GE(total, 200u);
}

TEST(Corpus, VariantIdsAreUniqueAndManifestIsLabeled) {
  ir::Context ctx;
  AppBundle app = router_app(ctx);
  corpus::BugCorpus c = corpus::build_corpus(ctx, app, fast_opts());
  std::set<std::string> vids;
  for (const corpus::BugVariant& v : c.variants) {
    EXPECT_TRUE(vids.insert(v.vid).second) << "duplicate vid " << v.vid;
    EXPECT_FALSE(v.liveness.empty()) << v.vid;
    EXPECT_FALSE(v.description.empty()) << v.vid;
  }
  const std::string manifest = corpus::manifest_json(c);
  EXPECT_NE(manifest.find("\"schema\":\"meissa-bug-corpus-v1\""),
            std::string::npos);
  EXPECT_NE(manifest.find("\"witness\":{"), std::string::npos);
}

TEST(Corpus, LegacyConversionCoversAllSixteen) {
  corpus::BugCorpus c = corpus::build_legacy_corpus();
  ASSERT_EQ(c.variants.size(), 16u);
  EXPECT_EQ(c.app, "legacy-table2");
  for (size_t i = 0; i < c.variants.size(); ++i) {
    const corpus::BugVariant& v = c.variants[i];
    EXPECT_EQ(v.kind, corpus::MutationKind::kLegacy);
    EXPECT_EQ(v.vid, "legacy:b" + std::to_string(i + 1));
    EXPECT_TRUE(v.has_reference) << v.vid;
    EXPECT_NE(v.ctx, nullptr) << v.vid;
  }
  const std::string manifest = corpus::manifest_json(c);
  EXPECT_NE(manifest.find("\"app\":\"legacy-table2\""), std::string::npos);
}

// -------------------------------------------------------------- survival

TEST(Survival, DetectsEveryVariantOfASmallCorpus) {
  ir::Context ctx;
  AppBundle app = make_acl(ctx, 4, 4);
  corpus::CorpusOptions copts = fast_opts();
  copts.max_variants = 10;
  corpus::BugCorpus c = corpus::build_corpus(ctx, app, copts);
  ASSERT_FALSE(c.variants.empty());

  survival::SurvivalOptions sopts;
  sopts.fuzz_execs = 512;
  survival::SurvivalReport rep = survival::run_survival(c, &app, sopts);
  EXPECT_EQ(rep.total, c.variants.size());
  EXPECT_EQ(rep.detected, rep.total);
  EXPECT_EQ(rep.survived, 0u);
  uint64_t first_sum = 0;
  for (int d = 0; d < survival::kNumDetectors; ++d) {
    first_sum += rep.first_by[d];
  }
  EXPECT_EQ(first_sum, rep.detected);
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"schema\":\"meissa-bug-survival-v1\""),
            std::string::npos);
  EXPECT_NE(rep.render_text().find("first detector"), std::string::npos);
}

TEST(Survival, GenerousLaneDeadlineIsTransparent) {
  // A deadline no lane comes near must change nothing: same detections,
  // zero timeout verdicts.
  ir::Context ctx;
  AppBundle app = make_acl(ctx, 4, 4);
  corpus::CorpusOptions copts = fast_opts();
  copts.max_variants = 4;
  corpus::BugCorpus c = corpus::build_corpus(ctx, app, copts);
  ASSERT_FALSE(c.variants.empty());
  survival::SurvivalOptions sopts;
  sopts.fuzz_execs = 512;
  survival::SurvivalReport base = survival::run_survival(c, &app, sopts);
  sopts.lane_deadline_ms = 600000;
  survival::SurvivalReport rep = survival::run_survival(c, &app, sopts);
  EXPECT_EQ(rep.detected, base.detected);
  for (int d = 0; d < survival::kNumDetectors; ++d) {
    EXPECT_EQ(rep.lane_timeouts[d], 0u) << survival::detector_name(
        static_cast<survival::Detector>(d));
  }
}

TEST(Survival, TinyLaneDeadlineRecordsTimeoutVerdictsNotSilence) {
  // Starved lanes must surface as first-class "timeout" verdicts — never
  // as silent survivals — and a timeout never overrides a detection the
  // lane made before its deadline tripped.
  ir::Context ctx;
  AppBundle app = make_acl(ctx, 4, 4);
  corpus::CorpusOptions copts = fast_opts();
  copts.max_variants = 4;
  corpus::BugCorpus c = corpus::build_corpus(ctx, app, copts);
  ASSERT_FALSE(c.variants.empty());
  survival::SurvivalOptions sopts;
  sopts.fuzz_execs = 512;
  sopts.lane_deadline_ms = 1;
  survival::SurvivalReport rep = survival::run_survival(c, &app, sopts);
  EXPECT_EQ(rep.total, c.variants.size());
  uint64_t timeouts = 0;
  for (int d = 0; d < survival::kNumDetectors; ++d) {
    timeouts += rep.lane_timeouts[d];
  }
  EXPECT_GT(timeouts, 0u);
  for (const survival::VariantOutcome& o : rep.outcomes) {
    const bool hit[survival::kNumDetectors] = {o.lint, o.verify, o.engine,
                                               o.fuzz};
    for (int d = 0; d < survival::kNumDetectors; ++d) {
      if (o.timeout[d]) {
        EXPECT_FALSE(hit[d]) << o.vid << " lane "
                             << survival::detector_name(
                                    static_cast<survival::Detector>(d));
      }
    }
  }
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"lane_timeouts\":"), std::string::npos);
  EXPECT_NE(json.find("\"timeouts\":{"), std::string::npos);
}

// ------------------------------------------- satellite: IntendedVariantClean

// Every corrected Table-2 bundle must be self-consistent ground truth: the
// intended program fuzzed against itself never diverges, and its code
// summary passes translation validation.
class IntendedVariantClean : public ::testing::TestWithParam<int> {};

TEST_P(IntendedVariantClean, FuzzSelfDiffAndSummaryValidation) {
  const int index = GetParam();
  ir::Context ctx;
  AppBundle intended = make_bug_intended(ctx, index);

  sim::Device target(sim::compile(intended.dp, intended.rules, ctx), ctx);
  sim::Device reference(sim::compile(intended.dp, intended.rules, ctx), ctx);
  fuzz::FuzzOptions fopts;
  fopts.execs = 1024;
  fopts.seed = 1;
  fuzz::Fuzzer fuzzer(target, reference, intended.dp, intended.rules, fopts);
  fuzz::FuzzResult r = fuzzer.run();
  EXPECT_FALSE(r.found()) << "bug " << index << ": " << r.divergences
                          << " self-divergences";

  cfg::Cfg original = cfg::build_cfg(intended.dp, intended.rules, ctx);
  summary::SummaryResult s = summary::summarize(ctx, original, {});
  analysis::ValidationResult vr =
      analysis::validate_summary(ctx, original, s.graph, {});
  EXPECT_TRUE(vr.sound()) << "bug " << index;
}

INSTANTIATE_TEST_SUITE_P(AllBugs, IntendedVariantClean,
                         ::testing::Range(1, 17));

}  // namespace
}  // namespace meissa::apps
