// Tests for the toolchain + behavioral device: parsing, every match kind,
// deparsing with checksum updates, multi-pipe routing, registers, and the
// direct behaviour of each injected fault.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "apps/demos.hpp"
#include "sim/toolchain.hpp"

namespace meissa::sim {
namespace {

packet::Packet fig7_packet(const p4::Program& prog, uint64_t dst) {
  packet::Packet p;
  packet::HeaderValues eth;
  eth.header = "eth";
  eth.values = {0x111111111111, 0x222222222222, 0x0800};
  packet::HeaderValues ipv4;
  ipv4.header = "ipv4";
  const p4::HeaderDef* def = prog.find_header("ipv4");
  ipv4.values.assign(def->fields.size(), 0);
  p.headers = {eth, ipv4};
  p.find("ipv4")->set_field(*def, "dst", dst);
  p.payload = {1, 2, 3, 4};
  return p;
}

TEST(Device, ForwardsKnownHostAndRewritesMac) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  p4::RuleSet rules = apps::demos::fig7_rules(3);
  Device device(compile(dp, rules, ctx), ctx);
  packet::Packet in = fig7_packet(dp.program, 0x0a000002);
  DeviceOutput out = device.inject({0, packet::serialize(dp.program, in)});
  ASSERT_FALSE(out.dropped);
  EXPECT_EQ(out.port, 3u);
  auto parsed = packet::parse_as(dp.program, {"eth", "ipv4"}, out.bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers[0].values[0], 0xaa0000000002ull);
  EXPECT_EQ(parsed->payload, (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST(Device, DropsUnknownHost) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  p4::RuleSet rules = apps::demos::fig7_rules(3);
  Device device(compile(dp, rules, ctx), ctx);
  packet::Packet in = fig7_packet(dp.program, 0x0afffffe);
  DeviceOutput out = device.inject({0, packet::serialize(dp.program, in)});
  EXPECT_TRUE(out.dropped);
}

TEST(Device, ShortPacketIsRejectedByParser) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig8_plane(ctx);
  p4::RuleSet rules = apps::demos::fig8_rules();
  Device device(compile(dp, rules, ctx), ctx);
  // 14-byte ethernet claiming IPv4 follows, but no IPv4 bytes.
  packet::Packet in;
  packet::HeaderValues eth;
  eth.header = "eth";
  eth.values = {1, 2, 0x0800};
  in.headers = {eth};
  DeviceOutput out = device.inject({0, packet::serialize(dp.program, in)});
  EXPECT_TRUE(out.dropped);
  bool saw = false;
  for (const std::string& t : device.render_trace(out.trace)) {
    saw |= t.find("ran out of packet") != std::string::npos;
  }
  EXPECT_TRUE(saw);
}

TEST(Device, MultiPipeTraversalAndTrace) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig8_plane(ctx);
  p4::RuleSet rules = apps::demos::fig8_rules();
  Device device(compile(dp, rules, ctx), ctx);
  packet::Packet in;
  packet::HeaderValues eth{"eth", {1, 2, 0x0800}};
  packet::HeaderValues ipv4;
  ipv4.header = "ipv4";
  const p4::HeaderDef* def = dp.program.find_header("ipv4");
  ipv4.values.assign(def->fields.size(), 0);
  packet::HeaderValues tcp{"tcp", {1000, 443, 0}};
  in.headers = {eth, ipv4, tcp};
  in.find("ipv4")->set_field(*def, "proto", 6);
  DeviceOutput out = device.inject({0, packet::serialize(dp.program, in)});
  ASSERT_FALSE(out.dropped);
  // The trace shows both pipeline instances parsing the packet.
  int parses = 0;
  for (const std::string& t : device.render_trace(out.trace)) {
    parses += t.find(": parsed eth") != std::string::npos;
  }
  EXPECT_EQ(parses, 2);
}

TEST(Device, ChecksumUpdateAppliedOnDeparse) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 2, /*seed=*/123);
  Device device(compile(app.dp, app.rules, ctx), ctx);
  // Route via the first installed prefix.
  const p4::TableEntry& route = app.rules.entries[0];
  packet::Packet in = fig7_packet(app.dp.program, route.matches[0].value);
  const p4::HeaderDef* def = app.dp.program.find_header("ipv4");
  in.find("ipv4")->set_field(*def, "ttl", 9);
  DeviceOutput out = device.inject({0, packet::serialize(app.dp.program, in)});
  ASSERT_FALSE(out.dropped);
  auto parsed = packet::parse_as(app.dp.program, {"eth", "ipv4"}, out.bytes);
  ASSERT_TRUE(parsed.has_value());
  // TTL decremented; checksum recomputed over the program's source list.
  EXPECT_EQ(parsed->find("ipv4")->field(*def, "ttl"), 8u);
  std::vector<uint64_t> kv;
  std::vector<int> kw;
  for (const char* f : {"ver_ihl", "dscp", "ecn", "len", "id", "frag", "ttl",
                        "proto", "src", "dst"}) {
    kv.push_back(parsed->find("ipv4")->field(*def, f));
    kw.push_back(def->find_field(f)->width);
  }
  EXPECT_EQ(parsed->find("ipv4")->field(*def, "csum"),
            p4::compute_hash(p4::HashAlgo::kCsum16, kv, kw, 16));
}

TEST(Device, RegistersPersistAcrossPackets) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  Device device(compile(app.dp, app.rules, ctx), ctx);
  device.set_register("gw_stats", 0, 41);
  // One outbound packet increments gw_stats[0]... observable only through
  // state, so set and read back via the register interface's state by
  // injecting and checking no crash; the register-as-field semantics are
  // covered by the engine tests. Here: the seeded value must not be lost
  // by injection of an unrelated (dropped) packet.
  packet::Packet junk;
  packet::HeaderValues eth{"eth", {1, 2, 0x1234}};
  junk.headers = {eth};
  DeviceOutput out = device.inject({0, packet::serialize(app.dp.program, junk)});
  EXPECT_TRUE(out.dropped);  // non-IP is rejected by the gateway parser
}

// ---- table lookup tie-breaking (the explicit p4::entry_rank rule) --------

// The fig7 plane with ipv4_host's key flipped to `kind` so overlapping
// entries are expressible.
p4::DataPlane fig7_with_key_kind(ir::Context& ctx, p4::MatchKind kind) {
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  for (p4::TableDef& t : dp.program.tables) {
    if (t.name == "ipv4_host") t.keys[0].kind = kind;
  }
  return dp;
}

uint64_t injected_port(Device& device, const p4::Program& prog, uint64_t dst) {
  DeviceOutput out = device.inject(
      {0, packet::serialize(prog, fig7_packet(prog, dst))});
  EXPECT_FALSE(out.dropped);
  return out.port;
}

TEST(Device, LpmLongestPrefixWinsOverInstallOrder) {
  ir::Context ctx;
  p4::DataPlane dp = fig7_with_key_kind(ctx, p4::MatchKind::kLpm);
  p4::RuleSet rules;
  // Adversarial install order: the broad /16 first, the covering /24 after.
  p4::TableEntry wide;
  wide.table = "ipv4_host";
  wide.matches = {p4::KeyMatch::lpm(0x0a000000, 16)};
  wide.action = "set_port";
  wide.args = {1};
  rules.add(wide);
  p4::TableEntry narrow = wide;
  narrow.matches = {p4::KeyMatch::lpm(0x0a000200, 24)};
  narrow.args = {2};
  rules.add(narrow);
  Device device(compile(dp, rules, ctx), ctx);
  // Inside the /24: the longer prefix wins although it was installed later.
  EXPECT_EQ(injected_port(device, dp.program, 0x0a000205), 2u);
  // Outside the /24 but inside the /16: the wide route still applies.
  EXPECT_EQ(injected_port(device, dp.program, 0x0a00ff05), 1u);
}

TEST(Device, TernaryPriorityThenInstallOrderBreaksTies) {
  ir::Context ctx;
  p4::DataPlane dp = fig7_with_key_kind(ctx, p4::MatchKind::kTernary);
  p4::RuleSet rules;
  p4::TableEntry a;  // matches 0x0a00****, weaker priority, installed first
  a.table = "ipv4_host";
  a.matches = {p4::KeyMatch::ternary(0x0a000000, 0xffff0000)};
  a.action = "set_port";
  a.args = {1};
  a.priority = 5;
  rules.add(a);
  p4::TableEntry b = a;  // matches 0x0a******, stronger priority, second
  b.matches = {p4::KeyMatch::ternary(0x0a000000, 0xff000000)};
  b.args = {2};
  b.priority = 1;
  rules.add(b);
  Device device(compile(dp, rules, ctx), ctx);
  // Both hit; the smaller priority number wins regardless of install order.
  EXPECT_EQ(injected_port(device, dp.program, 0x0a000005), 2u);

  // Full rank tie (same mask shape, same priority): install order decides.
  p4::RuleSet tied;
  p4::TableEntry first = a;
  first.priority = 3;
  first.args = {7};
  tied.add(first);
  p4::TableEntry second = first;
  second.args = {9};
  tied.add(second);
  Device dev2(compile(dp, tied, ctx), ctx);
  EXPECT_EQ(injected_port(dev2, dp.program, 0x0a000005), 7u);
}

// ---- fault behaviours, observed directly on the device -------------------

TEST(Fault, DropSetValidSuppressesVxlan) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  FaultSpec fault;
  fault.kind = FaultKind::kDropSetValid;
  fault.header = "vxlan";
  Device clean(compile(app.dp, app.rules, ctx), ctx);
  Device buggy(compile(app.dp, app.rules, ctx, fault), ctx);

  packet::Packet in;
  packet::HeaderValues eth{"eth", {1, 2, 0x0800}};
  packet::HeaderValues ipv4;
  ipv4.header = "ipv4";
  const p4::HeaderDef* def = app.dp.program.find_header("ipv4");
  ipv4.values.assign(def->fields.size(), 0);
  packet::HeaderValues tcp;
  tcp.header = "tcp";
  tcp.values.assign(app.dp.program.find_header("tcp")->fields.size(), 0);
  in.headers = {eth, ipv4, tcp};
  in.find("ipv4")->set_field(*def, "proto", 6);
  in.find("ipv4")->set_field(*def, "src", 0x0a000000);  // vm 0
  std::vector<uint8_t> bytes = packet::serialize(app.dp.program, in);

  DeviceOutput a = clean.inject({0, bytes});
  DeviceOutput b = buggy.inject({0, bytes});
  ASSERT_FALSE(a.dropped);
  ASSERT_FALSE(b.dropped);
  EXPECT_EQ(a.bytes.size(), b.bytes.size() + 8);  // missing vxlan header
}

TEST(Fault, FieldOverlapClobbersVictim) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  FaultSpec fault;
  fault.kind = FaultKind::kFieldOverlap;
  fault.field_a = "hdr.inner_ipv4.src";
  fault.field_b = "hdr.tcp.ackno";
  Device clean(compile(app.dp, app.rules, ctx), ctx);
  Device buggy(compile(app.dp, app.rules, ctx, fault), ctx);

  packet::Packet in;
  packet::HeaderValues eth{"eth", {1, 2, 0x0800}};
  packet::HeaderValues ipv4;
  ipv4.header = "ipv4";
  const p4::HeaderDef* idef = app.dp.program.find_header("ipv4");
  ipv4.values.assign(idef->fields.size(), 0);
  packet::HeaderValues tcp;
  tcp.header = "tcp";
  const p4::HeaderDef* tdef = app.dp.program.find_header("tcp");
  tcp.values.assign(tdef->fields.size(), 0);
  in.headers = {eth, ipv4, tcp};
  in.find("ipv4")->set_field(*idef, "proto", 6);
  in.find("ipv4")->set_field(*idef, "src", 0x0a000000);
  in.find("tcp")->set_field(*tdef, "ackno", 0x12345678);
  std::vector<uint8_t> bytes = packet::serialize(app.dp.program, in);

  std::vector<std::string> seq = {"eth",  "ipv4",       "udp",
                                  "vxlan", "inner_ipv4", "inner_tcp"};
  auto pa = packet::parse_as(app.dp.program, seq,
                             clean.inject({0, bytes}).bytes);
  auto pb = packet::parse_as(app.dp.program, seq,
                             buggy.inject({0, bytes}).bytes);
  ASSERT_TRUE(pa && pb);
  const p4::HeaderDef* itdef = app.dp.program.find_header("inner_tcp");
  EXPECT_EQ(pa->find("inner_tcp")->field(*itdef, "ackno"), 0x12345678u);
  // The pragma overlap propagated the clobbered ackno (the elastic IP).
  EXPECT_EQ(pb->find("inner_tcp")->field(*itdef, "ackno"), 0xcb007100u);
}

TEST(Fault, SkipMetadataZeroLeavesGarbage) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig8_plane(ctx);
  p4::RuleSet rules = apps::demos::fig8_rules();
  FaultSpec fault;
  fault.kind = FaultKind::kSkipMetadataZero;
  DeviceProgram prog = compile(dp, rules, ctx, fault);
  EXPECT_FALSE(prog.zero_metadata);
  DeviceProgram clean = compile(dp, rules, ctx);
  EXPECT_TRUE(clean.zero_metadata);
}

}  // namespace
}  // namespace meissa::sim
