// Summary translation validation: the demo summaries must be fully
// proven, every injected miscompilation of the summarized graph must be
// refuted at a named pipeline and edge, budget exhaustion must surface as
// `unproven` (never as a pass), and turning validation on must not perturb
// the emitted templates.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/validate.hpp"
#include "apps/apps.hpp"
#include "cfg/build.hpp"
#include "driver/generator.hpp"
#include "summary/summary.hpp"
#include "sym/template.hpp"
#include "util/error.hpp"

namespace meissa::analysis {
namespace {

apps::AppBundle router_app(ir::Context& ctx) {
  return apps::make_router(ctx, 6);
}

apps::AppBundle nat_gateway_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 2;  // ingress + egress NAT gateway (gw-2)
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

struct Validated {
  cfg::Cfg original;
  summary::SummaryResult summary;
  ValidationResult result;
};

Validated summarize_and_validate(
    ir::Context& ctx, const apps::AppBundle& app,
    const ValidateOptions& vopts = {},
    std::optional<SummaryFaultKind> fault = std::nullopt) {
  Validated v;
  v.original = cfg::build_cfg(app.dp, app.rules, ctx);
  v.summary = summary::summarize(ctx, v.original, vopts.summary);
  if (fault) {
    std::optional<std::string> what =
        inject_summary_fault(ctx, v.summary.graph, *fault);
    EXPECT_TRUE(what.has_value())
        << "no applicable site for " << summary_fault_name(*fault);
  }
  v.result = validate_summary(ctx, v.original, v.summary.graph, vopts);
  return v;
}

TEST(Validate, RouterSummaryFullyProven) {
  ir::Context ctx;
  Validated v = summarize_and_validate(ctx, router_app(ctx));
  const ValidationResult& r = v.result;
  EXPECT_TRUE(r.proven());
  EXPECT_TRUE(r.sound());
  EXPECT_GT(r.obligations, 0u);
  EXPECT_EQ(r.unsat, r.obligations);
  EXPECT_EQ(r.unproven, 0u);
  EXPECT_EQ(r.refuted, 0u);
  EXPECT_EQ(r.first_refuted(), nullptr);
  EXPECT_EQ(r.pipelines.size(), v.original.instances().size());
  for (const PipelineValidation& p : r.pipelines) {
    EXPECT_FALSE(p.instance.empty());
    // Every summarized branch paired with a surviving original path.
    EXPECT_EQ(p.surviving_paths, p.summary_branches) << p.instance;
    EXPECT_FALSE(p.ledger.empty()) << p.instance;
    // The totals are per-pipeline sums.
    EXPECT_EQ(p.unsat + p.unproven + p.refuted, p.obligations.size())
        << p.instance;
  }
}

TEST(Validate, NatGatewaySummaryFullyProven) {
  ir::Context ctx;
  Validated v = summarize_and_validate(ctx, nat_gateway_app(ctx));
  EXPECT_TRUE(v.result.proven());
  EXPECT_GT(v.result.obligations, 0u);
  // The transform eliminated something on this app, and each elimination
  // carries a ledger entry pointing at its proof obligation.
  uint64_t eliminated_edges = 0;
  for (const PipelineValidation& p : v.result.pipelines) {
    for (const EdgeLedgerEntry& e : p.ledger) {
      if (e.status != EdgeStatus::kEliminated) continue;
      ++eliminated_edges;
      ASSERT_GE(e.obligation, 0);
      ASSERT_LT(static_cast<size_t>(e.obligation), p.obligations.size());
      const Obligation& o = p.obligations[static_cast<size_t>(e.obligation)];
      EXPECT_EQ(o.kind, ObligationKind::kElimination);
      EXPECT_EQ(o.orig_from, e.from);
      EXPECT_EQ(o.orig_node, e.to);
    }
  }
  EXPECT_GT(eliminated_edges, 0u);
}

void expect_fault_refuted(SummaryFaultKind kind) {
  ir::Context ctx;
  Validated v = summarize_and_validate(ctx, nat_gateway_app(ctx), {}, kind);
  const ValidationResult& r = v.result;
  EXPECT_FALSE(r.sound()) << summary_fault_name(kind);
  EXPECT_GT(r.refuted, 0u) << summary_fault_name(kind);
  const Obligation* o = r.first_refuted();
  ASSERT_NE(o, nullptr) << summary_fault_name(kind);
  // The refutation names the miscompiled pipeline and carries context.
  EXPECT_FALSE(o->pipeline.empty());
  EXPECT_FALSE(o->detail.empty());
  const std::string text = validate_render_text(r, /*obligations_dump=*/false);
  EXPECT_NE(text.find("REFUTED"), std::string::npos) << text;
}

TEST(Validate, DropBranchFaultIsRefuted) {
  expect_fault_refuted(SummaryFaultKind::kDropBranch);
}

TEST(Validate, WidenGuardFaultIsRefuted) {
  expect_fault_refuted(SummaryFaultKind::kWidenGuard);
}

TEST(Validate, DropEffectFaultIsRefuted) {
  expect_fault_refuted(SummaryFaultKind::kDropEffect);
}

TEST(Validate, ExhaustedBudgetReportsUnprovenNeverPassed) {
  // A budget no real check fits in: every obligation must come back
  // `unproven` or (rarely) still-decided, and none may be silently counted
  // as a pass — proven() is false even though nothing was refuted.
  ir::Context ctx;
  ValidateOptions vopts;
  vopts.budget.max_conflicts = 1;
  vopts.budget.max_propagations = 1;
  Validated v = summarize_and_validate(ctx, nat_gateway_app(ctx), vopts);
  const ValidationResult& r = v.result;
  EXPECT_GT(r.unproven, 0u);
  EXPECT_FALSE(r.proven());
  // Degraded walks downgrade would-be refutations: a sound summary under
  // an exhausted budget stays sound, it just isn't proved.
  EXPECT_EQ(r.refuted, 0u);
  EXPECT_TRUE(r.sound());
  EXPECT_EQ(r.unsat + r.unproven, r.obligations);
}

TEST(Validate, FaultNamesRoundTrip) {
  for (SummaryFaultKind k :
       {SummaryFaultKind::kDropBranch, SummaryFaultKind::kWidenGuard,
        SummaryFaultKind::kDropEffect}) {
    std::optional<SummaryFaultKind> parsed =
        parse_summary_fault(summary_fault_name(k));
    ASSERT_TRUE(parsed.has_value()) << summary_fault_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_summary_fault("no-such-fault").has_value());
}

TEST(Validate, RenderingsAreWellFormed) {
  ir::Context ctx;
  Validated v = summarize_and_validate(ctx, router_app(ctx));
  const std::string text = validate_render_text(v.result, true);
  EXPECT_NE(text.find("PROVEN"), std::string::npos) << text;
  const std::string json = validate_render_json(v.result, true);
  EXPECT_NE(json.find("\"sound\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"proven\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pipelines\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"obligations\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"edges\""), std::string::npos) << json;
}

// ------------------------------------------------------- driver integration

std::vector<std::string> generate_signature(driver::GenOptions opts,
                                            driver::GenStats* stats = nullptr,
                                            bool* had_validation = nullptr) {
  ir::Context ctx;
  apps::AppBundle app = nat_gateway_app(ctx);
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  if (stats != nullptr) *stats = gen.stats();
  if (had_validation != nullptr) *had_validation = gen.validation() != nullptr;
  std::vector<std::string> sig;
  sig.reserve(templates.size());
  for (const sym::TestCaseTemplate& t : templates) {
    std::ostringstream os;
    os << sym::describe(t, ctx, gen.graph()) << "\n  path:";
    for (cfg::NodeId n : t.path) os << " " << n;
    sig.push_back(os.str());
  }
  return sig;
}

TEST(Validate, GeneratorValidationDoesNotPerturbTemplates) {
  const std::vector<std::string> base = generate_signature({});
  driver::GenOptions opts;
  opts.validate_summary = true;
  driver::GenStats stats;
  bool had_validation = false;
  const std::vector<std::string> got =
      generate_signature(opts, &stats, &had_validation);
  EXPECT_TRUE(had_validation);
  EXPECT_GT(stats.validate_obligations, 0u);
  EXPECT_EQ(stats.validate_unsat, stats.validate_obligations);
  EXPECT_EQ(stats.validate_refuted, 0u);
  EXPECT_FALSE(base.empty());
  ASSERT_EQ(got.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(got[i], base[i]) << "template " << i;
  }
}

TEST(Validate, GeneratorOffByDefaultReportsNoValidation) {
  driver::GenStats stats;
  bool had_validation = true;
  (void)generate_signature({}, &stats, &had_validation);
  EXPECT_FALSE(had_validation);
  EXPECT_EQ(stats.validate_obligations, 0u);
  EXPECT_EQ(stats.validate_seconds, 0.0);
}

TEST(Validate, GenStatsMergeAccumulatesValidationCounters) {
  driver::GenStats a;
  a.validate_obligations = 10;
  a.validate_unsat = 8;
  a.validate_unproven = 1;
  a.validate_refuted = 1;
  a.validate_seconds = 0.5;
  driver::GenStats b;
  b.validate_obligations = 5;
  b.validate_unsat = 5;
  b.validate_seconds = 0.25;
  a += b;
  EXPECT_EQ(a.validate_obligations, 15u);
  EXPECT_EQ(a.validate_unsat, 13u);
  EXPECT_EQ(a.validate_unproven, 1u);
  EXPECT_EQ(a.validate_refuted, 1u);
  EXPECT_DOUBLE_EQ(a.validate_seconds, 0.75);
}

}  // namespace
}  // namespace meissa::analysis
