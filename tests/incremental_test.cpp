// driver::IncrementalSession: summary-unit reuse + shared verdict cache
// across rule updates. The soundness bar is byte-identity — an incremental
// update's templates must equal a from-scratch regeneration of the updated
// program — and the conservative dependency edges are load-bearing for it:
// deleting them (via the mutate_model test hook) must make some update
// produce different output than full regeneration.
#include <algorithm>
#include <string>
#include <vector>

#include "analysis/impact.hpp"
#include "apps/apps.hpp"
#include "driver/incremental.hpp"
#include "gtest/gtest.h"

namespace meissa::driver {
namespace {

apps::AppBundle gateway(ir::Context& ctx, int level = 2) {
  apps::GwConfig cfg;
  cfg.level = level;
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

// Removes the target table's last remaining entry; false when none left.
bool remove_last_entry(p4::RuleSet& rules, const std::string& table) {
  for (auto it = rules.entries.rbegin(); it != rules.entries.rend(); ++it) {
    if (it->table == table) {
      rules.entries.erase(std::next(it).base());
      return true;
    }
  }
  return false;
}

// Sorted strict signatures of a from-scratch generation of `rules`.
std::vector<std::string> full_regen_sigs(const p4::DataPlane& dp,
                                         const p4::RuleSet& rules,
                                         ir::Context& ctx,
                                         uint64_t* checks = nullptr) {
  Generator gen(ctx, dp, rules, GenOptions{});
  std::vector<sym::TestCaseTemplate> ts = gen.generate();
  std::vector<std::string> sigs;
  for (const sym::TestCaseTemplate& t : ts) {
    sigs.push_back(IncrementalSession::full_signature(ctx, gen.graph(), t));
  }
  std::sort(sigs.begin(), sigs.end());
  if (checks != nullptr) *checks = gen.stats().smt_checks;
  return sigs;
}

TEST(Incremental, GatewayUpdateIsByteIdenticalAndReusesCleanRegions) {
  ir::Context ctx;
  apps::AppBundle app = gateway(ctx);
  IncrementalSession session(ctx, app.dp);

  p4::RuleSet rules = app.rules;
  UpdateReport base = session.run(rules);
  EXPECT_EQ(base.run, 0);
  EXPECT_FALSE(base.templates.empty());

  const std::string table = rules.entries.back().table;
  ASSERT_TRUE(remove_last_entry(rules, table));
  UpdateReport up = session.run(rules);
  EXPECT_EQ(up.run, 1);
  EXPECT_FALSE(up.impact.full);
  EXPECT_EQ(up.impact.changed_tables, std::vector<std::string>{table});
  EXPECT_FALSE(up.impact.clean.empty()) << "tail update dirtied everything";
  EXPECT_GT(up.summaries_reused, 0u);
  // Delta coverage is an exact partition of the update's template set.
  EXPECT_EQ(up.added + up.unchanged, up.templates.size());

  // Byte-identity against a from-scratch regeneration in a fresh context.
  ir::Context ctx2;
  apps::AppBundle app2 = gateway(ctx2);
  p4::RuleSet rules2 = app2.rules;
  ASSERT_TRUE(remove_last_entry(rules2, table));
  uint64_t full_checks = 0;
  std::vector<std::string> fresh =
      full_regen_sigs(app2.dp, rules2, ctx2, &full_checks);
  EXPECT_EQ(up.full_sigs, fresh);
  // The point of the machinery: the update pays fewer backend checks than
  // regenerating from scratch.
  EXPECT_LT(up.smt_checks, full_checks);
}

TEST(Incremental, DependencyEdgesAreLoadBearing) {
  // With the def-use edges deleted from the impact model, clean-region
  // replay becomes unsound: for some table update the incremental output
  // must differ from full regeneration. The sharpest case is gw-3's
  // switch pipes — sw_route (applied in sw.sig) writes the egress port
  // that sw_dmac (sw.seg) keys on and the topology guards branch on, so
  // dropping an sw_l3 route changes what sw.seg must be explored under
  // while leaving sw.seg's own fingerprint untouched. Probe a few tables
  // in case app tweaks move the sensitivity.
  const std::vector<std::string> candidates = {"sw_l3", "sw_dmac",
                                               "elastic_ip", "gw_acl"};
  bool diverged = false;
  for (const std::string& table : candidates) {
    ir::Context ctx;
    apps::AppBundle app = gateway(ctx, 3);
    IncrementalOptions opts;
    opts.mutate_model = [](analysis::ImpactModel& m) { m.deps.edges.clear(); };
    IncrementalSession session(ctx, app.dp, opts);
    p4::RuleSet rules = app.rules;
    session.run(rules);
    if (!remove_last_entry(rules, table)) continue;
    UpdateReport up = session.run(rules);

    ir::Context ctx2;
    apps::AppBundle app2 = gateway(ctx2, 3);
    p4::RuleSet rules2 = app2.rules;
    ASSERT_TRUE(remove_last_entry(rules2, table));
    std::vector<std::string> fresh = full_regen_sigs(app2.dp, rules2, ctx2);
    if (up.full_sigs != fresh) {
      diverged = true;
      break;
    }
  }
  EXPECT_TRUE(diverged)
      << "deleting every dependency edge changed nothing — the edges (and "
         "the soundness argument resting on them) would be dead weight";
}

TEST(Incremental, SecondIdenticalRunIsAllClean) {
  ir::Context ctx;
  apps::AppBundle app = gateway(ctx, 1);
  IncrementalSession session(ctx, app.dp);
  UpdateReport base = session.run(app.rules);
  UpdateReport again = session.run(app.rules);
  EXPECT_TRUE(again.impact.dirty.empty());
  EXPECT_EQ(again.impact.clean.size(), base.impact.clean.size() +
                                           base.impact.dirty.size());
  EXPECT_EQ(again.added, 0u);
  EXPECT_EQ(again.removed, 0u);
  EXPECT_EQ(again.unchanged, again.templates.size());
  EXPECT_EQ(again.full_sigs, base.full_sigs);
}

}  // namespace
}  // namespace meissa::driver
