// The supervision layer (util/supervise) and the runtime fault injector
// (util/faultinject): spec parsing, arming semantics (after/times, prefix
// sites, execution vs data faults), watchdog stall/deadline trips, and the
// engine-level contract — a stalled or aborted shard is re-queued once and
// then degraded with exact accounting, never hung and never dropped
// silently.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "apps/apps.hpp"
#include "driver/generator.hpp"
#include "obs/metrics.hpp"
#include "testlib.hpp"
#include "util/faultinject.hpp"
#include "util/supervise.hpp"

namespace meissa {
namespace {

using util::FaultInjector;
using util::FaultKind;
using util::FaultSpec;
using util::parse_fault_spec;

TEST(FaultSpecParse, FieldsAndDefaults) {
  FaultSpec s = parse_fault_spec("shard.3:abort");
  EXPECT_EQ(s.site, "shard.3");
  EXPECT_EQ(s.kind, FaultKind::kAbort);
  EXPECT_EQ(s.after, 0u);
  EXPECT_EQ(s.param, 0u);
  EXPECT_EQ(s.times, 1u);

  s = parse_fault_spec("checkpoint.write:corrupt:2:16:5");
  EXPECT_EQ(s.site, "checkpoint.write");
  EXPECT_EQ(s.kind, FaultKind::kCorrupt);
  EXPECT_EQ(s.after, 2u);
  EXPECT_EQ(s.param, 16u);
  EXPECT_EQ(s.times, 5u);

  EXPECT_EQ(parse_fault_spec("s:stall:0:50").kind, FaultKind::kStall);
  EXPECT_EQ(parse_fault_spec("s:alloc-fail").kind, FaultKind::kAllocFail);
  EXPECT_EQ(parse_fault_spec("s:truncate").kind, FaultKind::kTruncate);
  EXPECT_EQ(parse_fault_spec("shard.*:abort").site, "shard.*");

  EXPECT_THROW(parse_fault_spec(""), util::ValidationError);
  EXPECT_THROW(parse_fault_spec("siteonly"), util::ValidationError);
  EXPECT_THROW(parse_fault_spec(":abort"), util::ValidationError);
  EXPECT_THROW(parse_fault_spec("s:frobnicate"), util::ValidationError);
}

TEST(FaultInjector, AfterAndTimesBoundFirings) {
  FaultInjector inj;
  EXPECT_TRUE(inj.empty());
  inj.add(parse_fault_spec("work:abort:2:0:2"));  // skip 2 hits, fire twice
  EXPECT_FALSE(inj.empty());
  EXPECT_FALSE(inj.hit("work"));
  EXPECT_FALSE(inj.hit("work"));
  EXPECT_THROW(inj.hit("work"), util::InjectedFaultError);
  EXPECT_THROW(inj.hit("work"), util::InjectedFaultError);
  EXPECT_FALSE(inj.hit("work"));  // disarmed after `times` firings
  EXPECT_EQ(inj.fired(), 2u);
  EXPECT_FALSE(inj.hit("other.site"));  // never matched
}

TEST(FaultInjector, PrefixSitesMatchEveryShard) {
  FaultInjector inj;
  inj.add(parse_fault_spec("shard.*:abort:0:0:0"));  // times 0 = unlimited
  EXPECT_THROW(inj.hit("shard.0"), util::InjectedFaultError);
  EXPECT_THROW(inj.hit("shard.17"), util::InjectedFaultError);
  EXPECT_FALSE(inj.hit("checkpoint.write"));
  EXPECT_EQ(inj.fired(), 2u);
}

TEST(FaultInjector, AllocFailThrowsBadAlloc) {
  FaultInjector inj;
  inj.add(parse_fault_spec("work:alloc-fail"));
  EXPECT_THROW(inj.hit("work"), std::bad_alloc);
}

TEST(FaultInjector, DataFaultsDamageBuffersNotExecution) {
  FaultInjector inj;
  inj.add(parse_fault_spec("buf:truncate:0:3:1"));
  inj.add(parse_fault_spec("buf:corrupt:0:1:1"));
  inj.add(parse_fault_spec("buf:abort"));
  // One mutate call applies every due data fault (truncate then corrupt,
  // arming order) and leaves the abort untouched.
  std::vector<uint8_t> bytes = {10, 20, 30, 40, 50, 60};
  EXPECT_TRUE(inj.mutate("buf", bytes));
  EXPECT_EQ(bytes.size(), 3u);
  EXPECT_NE(bytes[1], 20);
  EXPECT_FALSE(inj.mutate("buf", bytes));  // data specs consumed
  // The abort fires only through the execution hook.
  EXPECT_THROW(inj.hit("buf"), util::InjectedFaultError);
  std::vector<uint8_t> other = {1};
  EXPECT_FALSE(inj.mutate("unmatched", other));
}

TEST(FaultInjector, StallHonorsCancelToken) {
  FaultInjector inj;
  inj.add(parse_fault_spec("slow:stall:0:60000"));  // nominally 60 s
  util::CancelToken token;
  token.cancel();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(inj.hit("slow", &token));  // fired, but broke out immediately
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 5.0);  // a cancelled stall must not serve its full term
}

TEST(Supervisor, WatchdogTripsSilentTask) {
  util::SuperviseOptions so;
  so.stall_timeout_ms = 40;
  so.poll_interval_ms = 5;
  util::Supervisor sup(so);
  util::Supervisor::Task* task = sup.begin("quiet");
  ASSERT_NE(task, nullptr);
  // No heartbeats: the watchdog must cancel the task's token.
  for (int i = 0; i < 400 && !task->tripped(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(task->tripped());
  EXPECT_TRUE(task->token().cancelled());
  EXPECT_TRUE(sup.end(task));
  EXPECT_GE(sup.stats().stalls, 1u);
  EXPECT_EQ(sup.stats().completed, 1u);
}

TEST(Supervisor, HeartbeatsKeepTaskAliveUntilDeadline) {
  util::SuperviseOptions so;
  so.stall_timeout_ms = 200;
  so.deadline_ms = 80;
  so.poll_interval_ms = 5;
  util::Supervisor sup(so);
  util::Supervisor::Task* task = sup.begin("busy");
  // Beating steadily: the stall detector stays quiet, but the wall-clock
  // deadline still fires.
  for (int i = 0; i < 400 && !task->tripped(); ++i) {
    task->heartbeat();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(task->tripped());
  EXPECT_TRUE(sup.end(task));
  EXPECT_GE(sup.stats().deadline_trips, 1u);
  EXPECT_EQ(sup.stats().stalls, 0u);
}

TEST(Supervisor, CleanCompletionTripsNothing) {
  util::SuperviseOptions so;
  so.stall_timeout_ms = 10000;
  so.deadline_ms = 10000;
  util::Supervisor sup(so);
  EXPECT_TRUE(so.enabled());
  EXPECT_FALSE(util::SuperviseOptions{}.enabled());
  util::Supervisor::Task* a = sup.begin("a");
  util::Supervisor::Task* b = sup.begin("b");
  a->heartbeat();
  EXPECT_FALSE(sup.end(a));
  EXPECT_FALSE(sup.end(b));
  const util::SuperviseStats st = sup.stats();
  EXPECT_EQ(st.tasks, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.trips(), 0u);
}

// ------------------------------------------------ engine-level contract

driver::GenStats generate_with_faults(util::FaultInjector* inj,
                                      util::SuperviseOptions supervise = {}) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 2;
  cfg.elastic_ips = 4;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  driver::GenOptions opts;
  opts.threads = 4;
  opts.fault = inj;
  opts.supervise = supervise;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  (void)gen.generate();
  return gen.stats();
}

TEST(ShardFaults, AbortedShardIsRequeuedAndRecovers) {
  // One injected crash: the shard re-runs on a fresh context and the run
  // loses nothing (template count matches the unfaulted run).
  const driver::GenStats clean = generate_with_faults(nullptr);
  util::FaultInjector inj;
  inj.add(parse_fault_spec("shard.0:abort"));
  const driver::GenStats got = generate_with_faults(&inj);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(got.templates, clean.templates);
  EXPECT_EQ(got.engine.requeued_shards, 1u);
  EXPECT_EQ(got.engine.degraded_shards, 0u);
}

TEST(ShardFaults, PersistentAbortDegradesWithAccounting) {
  // A shard that crashes on every attempt exhausts its retry and is
  // *degraded*: counted, never hung, and the rest of the run completes.
  const driver::GenStats clean = generate_with_faults(nullptr);
  util::FaultInjector inj;
  inj.add(parse_fault_spec("shard.2:abort:0:0:0"));  // unlimited firings
  const driver::GenStats got = generate_with_faults(&inj);
  EXPECT_GE(inj.fired(), 2u);  // both attempts crashed
  EXPECT_EQ(got.engine.requeued_shards, 1u);
  EXPECT_EQ(got.engine.degraded_shards, 1u);
  EXPECT_LE(got.templates, clean.templates);
  EXPECT_FALSE(got.cancelled);  // degraded coverage is not a cancelled run
}

TEST(ShardFaults, StalledShardIsCancelledByWatchdogAndDegrades) {
  // A shard stalled far past the stall timeout on *both* attempts: the
  // watchdog must break each stall (the injector polls the task token), so
  // the whole run finishes in bounded time with the shard degraded.
  util::FaultInjector inj;
  inj.add(parse_fault_spec("shard.1:stall:0:60000:0"));  // 60 s, unlimited
  util::SuperviseOptions so;
  so.stall_timeout_ms = 100;
  so.poll_interval_ms = 5;
  const auto t0 = std::chrono::steady_clock::now();
  const driver::GenStats got = generate_with_faults(&inj, so);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 30.0);  // two broken stalls, not two 60 s sleeps
  EXPECT_EQ(got.engine.requeued_shards, 1u);
  EXPECT_EQ(got.engine.degraded_shards, 1u);
}

TEST(ShardFaults, SupervisedCleanRunEmitsNoTrips) {
  // Generous thresholds on a healthy run: supervision must be transparent.
  const driver::GenStats clean = generate_with_faults(nullptr);
  util::SuperviseOptions so;
  so.stall_timeout_ms = 60000;
  so.deadline_ms = 60000;
  const driver::GenStats got = generate_with_faults(nullptr, so);
  EXPECT_EQ(got.templates, clean.templates);
  EXPECT_EQ(got.engine.requeued_shards, 0u);
  EXPECT_EQ(got.engine.degraded_shards, 0u);
}

TEST(ShardFaults, SuperviseMetricsEmitted) {
  obs::MetricsRegistry::set_enabled(true);
  obs::metrics().reset_values();
  util::FaultInjector inj;
  inj.add(parse_fault_spec("shard.0:abort:0:0:0"));
  (void)generate_with_faults(&inj);
  EXPECT_GE(obs::metrics().counter("supervise.shard_requeues").value(), 1u);
  EXPECT_GE(obs::metrics().counter("supervise.shard_degraded").value(), 1u);
  obs::MetricsRegistry::set_enabled(false);
  obs::metrics().reset_values();
}

}  // namespace
}  // namespace meissa
