// Greybox-lane tests: coverage-map bucketing and edge accounting, mutator
// determinism, fuzzer same-seed reproducibility, divergence detection on a
// seeded toolchain bug, and seed-register installation.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "fuzz/fuzz.hpp"
#include "sim/coverage.hpp"
#include "sim/toolchain.hpp"
#include "testlib.hpp"

namespace meissa::fuzz {
namespace {

// ----------------------------------------------------------- coverage map

TEST(Coverage, BucketBitsLadder) {
  EXPECT_EQ(sim::bucket_bits(0), 0);
  EXPECT_EQ(sim::bucket_bits(1), 1);
  EXPECT_EQ(sim::bucket_bits(2), 2);
  EXPECT_EQ(sim::bucket_bits(3), 4);
  EXPECT_EQ(sim::bucket_bits(5), 8);
  EXPECT_EQ(sim::bucket_bits(15), 16);
  EXPECT_EQ(sim::bucket_bits(31), 32);
  EXPECT_EQ(sim::bucket_bits(100), 64);
  EXPECT_EQ(sim::bucket_bits(255), 128);
}

TEST(Coverage, EdgesAndBoundaries) {
  sim::CoverageMap cov;
  cov.hit(1);
  cov.hit(2);
  EXPECT_EQ(cov.nonzero(), 2u);  // edge 0->1 and edge 1->2

  // boundary() breaks the chain: the same two keys after a boundary land
  // on the same two edges as a fresh map would.
  sim::CoverageMap cov2;
  cov2.hit(1);
  cov2.boundary();
  cov2.hit(1);
  cov2.hit(2);
  sim::CoverageMap ref;
  ref.hit(1);
  ref.hit(2);
  // cov2 saw edge 0->1 twice plus 1->2 once; same *edges* as ref.
  size_t shared = 0;
  for (size_t i = 0; i < sim::CoverageMap::kSize; ++i) {
    shared += cov2.bytes()[i] != 0 && ref.bytes()[i] != 0;
  }
  EXPECT_EQ(shared, ref.nonzero());

  cov.reset();
  EXPECT_EQ(cov.nonzero(), 0u);
}

TEST(Coverage, MergeNewCoverage) {
  sim::CoverageMap cov;
  cov.hit(7);
  std::vector<uint8_t> virgin;

  // Probe without commit: fresh, and virgin stays unchanged.
  EXPECT_TRUE(sim::merge_new_coverage(cov, virgin, /*commit=*/false));
  EXPECT_TRUE(sim::merge_new_coverage(cov, virgin, /*commit=*/false));

  // Commit: absorbed, then no longer fresh.
  EXPECT_TRUE(sim::merge_new_coverage(cov, virgin, /*commit=*/true));
  EXPECT_FALSE(sim::merge_new_coverage(cov, virgin, /*commit=*/false));

  // A new bucket (more hits on the same edge) is fresh again.
  cov.hit(7);  // second hit: bucket 1 -> bucket 2
  EXPECT_TRUE(sim::merge_new_coverage(cov, virgin, /*commit=*/false));
}

// --------------------------------------------------------------- mutator

TEST(Mutator, DeterministicForFixedSeed) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  Mutator mut(app.dp, app.rules);

  util::Rng a(123), b(123);
  for (int i = 0; i < 32; ++i) {
    sim::DeviceInput x = mut.random_packet(a);
    sim::DeviceInput y = mut.random_packet(b);
    EXPECT_EQ(x.port, y.port);
    EXPECT_EQ(x.bytes, y.bytes);
    mut.mutate(x, a);
    mut.mutate(y, b);
    EXPECT_EQ(x.port, y.port);
    EXPECT_EQ(x.bytes, y.bytes);
  }
  EXPECT_GT(mut.dictionary_size(), 0u);
  EXPECT_GT(mut.layouts(), 0u);
}

// ---------------------------------------------------------------- fuzzer

FuzzResult fuzz_bug(ir::Context& ctx, int index, uint64_t seed,
                    uint64_t execs) {
  apps::BugScenario s = apps::make_bug(ctx, index);
  apps::AppBundle intended = apps::make_bug_intended(ctx, index);
  sim::Device target(sim::compile(s.bundle.dp, s.bundle.rules, ctx, s.fault),
                     ctx);
  sim::Device reference(sim::compile(intended.dp, intended.rules, ctx), ctx);
  FuzzOptions opts;
  opts.execs = execs;
  opts.seed = seed;
  Fuzzer fuzzer(target, reference, s.bundle.dp, s.bundle.rules, opts);
  return fuzzer.run();
}

TEST(Fuzzer, FindsParserSelectBug) {
  // Bug 7: the toolchain compiles away a parser select; random walks that
  // pin the select constant diverge almost immediately.
  ir::Context ctx;
  FuzzResult r = fuzz_bug(ctx, 7, 1, 2000);
  EXPECT_TRUE(r.found());
  EXPECT_GT(r.coverage_edges, 0u);
  ASSERT_FALSE(r.samples.empty());
  EXPECT_FALSE(r.samples[0].target_trace.empty());
  EXPECT_FALSE(r.samples[0].reference_trace.empty());
}

TEST(Fuzzer, SameSeedReproducesCoverageAndVerdicts) {
  ir::Context ctx1, ctx2;
  FuzzResult a = fuzz_bug(ctx1, 8, 5, 1500);
  FuzzResult b = fuzz_bug(ctx2, 8, 5, 1500);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.coverage_edges, b.coverage_edges);
  EXPECT_EQ(a.corpus, b.corpus);
  EXPECT_EQ(a.corpus_adds, b.corpus_adds);
  EXPECT_EQ(a.divergences, b.divergences);
}

TEST(Fuzzer, IdenticalDevicesNeverDiverge) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_mtag(ctx, 4);
  sim::Device target(sim::compile(app.dp, app.rules, ctx), ctx);
  sim::Device reference(sim::compile(app.dp, app.rules, ctx), ctx);
  FuzzOptions opts;
  opts.execs = 1000;
  Fuzzer fuzzer(target, reference, app.dp, app.rules, opts);
  FuzzResult r = fuzzer.run();
  EXPECT_EQ(r.divergences, 0u);
  EXPECT_GT(r.coverage_edges, 0u);
}

TEST(Fuzzer, AddSeedInstallsRegistersOnBothDevices) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  sim::Device target(sim::compile(app.dp, app.rules, ctx), ctx);
  sim::Device reference(sim::compile(app.dp, app.rules, ctx), ctx);
  Fuzzer fuzzer(target, reference, app.dp, app.rules, {});

  ir::ConcreteState regs;
  regs[ctx.fields.intern(p4::register_field("gw_stats", 0), 32)] = 5;
  fuzzer.add_seed(sim::DeviceInput{0, {0xde, 0xad}}, regs);
  EXPECT_EQ(target.get_register("gw_stats", 0), 5u);
  EXPECT_EQ(reference.get_register("gw_stats", 0), 5u);
}

TEST(Fuzzer, ResultJsonRoundTrips) {
  ir::Context ctx;
  FuzzResult r = fuzz_bug(ctx, 7, 2, 500);
  testlib::json::Value v = testlib::json::parse(r.to_json());
  EXPECT_EQ(static_cast<uint64_t>(v.at("execs").as_number()), r.execs);
  EXPECT_EQ(static_cast<size_t>(v.at("coverage_edges").as_number()),
            r.coverage_edges);
  EXPECT_EQ(static_cast<uint64_t>(v.at("divergences").as_number()),
            r.divergences);
  EXPECT_EQ(v.at("samples").array.size(), r.samples.size());
}

}  // namespace
}  // namespace meissa::fuzz
