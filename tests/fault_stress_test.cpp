// Stress the driver's fault tolerance end to end: under a realistically
// lossy tester<->device link (drops + duplicates + reordering, several
// seeds) every demo app must converge to exactly the verdicts of the
// fault-free run — the retry/dedup layer absorbs the flakiness instead of
// surfacing it as spurious failures. This is the suite the CI fault job
// runs (--gtest_filter=FaultStress.*).
#include <gtest/gtest.h>

#include <functional>

#include "apps/apps.hpp"
#include "driver/tester.hpp"
#include "sim/toolchain.hpp"

namespace meissa {
namespace {

using AppMaker = std::function<apps::AppBundle(ir::Context&)>;

apps::AppBundle router_app(ir::Context& ctx) {
  return apps::make_router(ctx, 6);
}

apps::AppBundle nat_gateway_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 2;  // ingress + egress NAT gateway (gw-2)
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

apps::AppBundle multi_switch_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 4;  // 8 pipelines across 2 switches (gw-4, Fig. 1)
  cfg.elastic_ips = 2;
  return apps::make_gateway(ctx, cfg);
}

driver::TestReport run_app(const AppMaker& make,
                           const sim::LinkFaultSpec& link) {
  ir::Context ctx;
  apps::AppBundle app = make(ctx);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::TestRunOptions opts;
  opts.link = link;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  return meissa.test(device, app.intents);
}

// The ISSUE's acceptance profile: 5% drop, 2% duplication, reordering.
sim::LinkFaultSpec lossy_spec(uint64_t seed) {
  sim::LinkFaultSpec spec;
  spec.drop_rate = 0.05;
  spec.duplicate_rate = 0.02;
  spec.reorder_rate = 0.05;
  spec.seed = seed;
  return spec;
}

void expect_lossy_run_converges(const AppMaker& make) {
  const driver::TestReport base = run_app(make, sim::LinkFaultSpec{});
  ASSERT_GT(base.cases, 0u);
  uint64_t total_retries = 0;
  for (uint64_t seed : {3u, 17u, 99u, 1234u, 777777u}) {
    const driver::TestReport got = run_app(make, lossy_spec(seed));
    // Same verdicts as the fault-free run, case for case.
    EXPECT_EQ(got.cases, base.cases) << "seed " << seed;
    EXPECT_EQ(got.passed, base.passed) << "seed " << seed;
    EXPECT_EQ(got.failed, base.failed) << "seed " << seed;
    // Nothing gave up: retries absorbed every fault.
    EXPECT_TRUE(got.quarantined.empty())
        << "seed " << seed << ": " << got.quarantined.size() << " quarantined";
    // The link really was lossy (the test is not vacuous).
    EXPECT_GT(got.link.dropped + got.link.duplicated + got.link.reordered, 0u)
        << "seed " << seed;
    total_retries += got.send_retries;
  }
  // Across five seeds at 5% loss some sends must have been retried.
  EXPECT_GT(total_retries, 0u);
}

TEST(FaultStress, RouterConvergesOnLossyLink) {
  expect_lossy_run_converges(router_app);
}

TEST(FaultStress, NatGatewayConvergesOnLossyLink) {
  expect_lossy_run_converges(nat_gateway_app);
}

TEST(FaultStress, MultiSwitchConvergesOnLossyLink) {
  expect_lossy_run_converges(multi_switch_app);
}

TEST(FaultStress, CorruptionIsDetectedNotMisjudged) {
  // A corrupting link damages verdict payloads; the stamp check must
  // discard them (and retry) rather than let a flipped bit fail a case.
  const driver::TestReport base = run_app(router_app, sim::LinkFaultSpec{});
  sim::LinkFaultSpec spec;
  spec.corrupt_rate = 0.10;
  spec.seed = 5;
  const driver::TestReport got = run_app(router_app, spec);
  EXPECT_EQ(got.passed, base.passed);
  EXPECT_EQ(got.failed, base.failed);
  EXPECT_TRUE(got.quarantined.empty());
  EXPECT_GT(got.corruption_detected, 0u);
  EXPECT_EQ(got.corruption_detected, got.link.corrupted);
}

TEST(FaultStress, EverythingAtOnceStillConverges) {
  // All five fault classes simultaneously on the hardest app.
  const driver::TestReport base =
      run_app(multi_switch_app, sim::LinkFaultSpec{});
  sim::LinkFaultSpec spec = lossy_spec(42);
  spec.corrupt_rate = 0.02;
  spec.install_fail_rate = 0.02;
  const driver::TestReport got = run_app(multi_switch_app, spec);
  EXPECT_EQ(got.cases, base.cases);
  EXPECT_EQ(got.passed, base.passed);
  EXPECT_EQ(got.failed, base.failed);
  EXPECT_TRUE(got.quarantined.empty());
}

TEST(FaultStress, TinySmtBudgetRunsEndToEndWithoutThrowing) {
  // The CI fault job's budget leg: a starvation SMT budget must degrade
  // coverage, not correctness — every case that is generated still passes.
  ir::Context ctx;
  apps::AppBundle app = nat_gateway_app(ctx);
  sim::Device device(sim::compile(app.dp, app.rules, ctx), ctx);
  driver::TestRunOptions opts;
  opts.gen.smt_budget.max_conflicts = 1;
  opts.gen.smt_budget.max_propagations = 1;
  driver::Meissa meissa(ctx, app.dp, app.rules, opts);
  driver::TestReport report = meissa.test(device, app.intents);
  EXPECT_EQ(report.failed, 0u) << report.str();
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.gen.exact_paths, report.templates);
  // Degradation is visible in the report, never silent.
  EXPECT_EQ(report.gen.degraded_paths, report.gen.engine.degraded_paths);
}

}  // namespace
}  // namespace meissa
