// Tests for the packet substrate: bit-level wire IO, serialization against
// program header definitions, diffing, and internet checksums.
#include <gtest/gtest.h>

#include "apps/demos.hpp"
#include "packet/checksum.hpp"
#include "packet/packet.hpp"
#include "packet/wire.hpp"
#include "util/rng.hpp"

namespace meissa::packet {
namespace {

TEST(Wire, BitRoundTripAcrossByteBoundaries) {
  BitWriter w;
  w.put(0b101, 3);
  w.put(0x1f, 5);       // completes the first byte
  w.put(0xabcd, 16);    // two aligned bytes
  w.put(1, 1);
  w.put(0x7f, 7);
  ASSERT_TRUE(w.byte_aligned());
  std::vector<uint8_t> bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 4u);

  BitReader r(bytes);
  EXPECT_EQ(r.get(3), std::optional<uint64_t>(0b101));
  EXPECT_EQ(r.get(5), std::optional<uint64_t>(0x1f));
  EXPECT_EQ(r.get(16), std::optional<uint64_t>(0xabcd));
  EXPECT_EQ(r.get(1), std::optional<uint64_t>(1));
  EXPECT_EQ(r.get(7), std::optional<uint64_t>(0x7f));
  EXPECT_EQ(r.get(1), std::nullopt);  // exhausted
}

TEST(Wire, MsbFirstLayout) {
  BitWriter w;
  w.put(0x0800, 16);
  std::vector<uint8_t> bytes = std::move(w).take();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x08);  // network byte order falls out of MSB-first
  EXPECT_EQ(bytes[1], 0x00);
}

TEST(Wire, PropertyRandomFieldSequencesRoundTrip) {
  util::Rng rng(77);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::pair<uint64_t, int>> fields;
    int total_bits = 0;
    BitWriter w;
    for (int i = 0; i < 20; ++i) {
      int width = static_cast<int>(rng.range(1, 48));
      uint64_t v = rng.bits(width);
      fields.push_back({v, width});
      w.put(v, width);
      total_bits += width;
    }
    while (total_bits % 8 != 0) {
      w.put(0, 1);
      ++total_bits;
    }
    std::vector<uint8_t> bytes = std::move(w).take();
    BitReader r(bytes);
    for (auto& [v, width] : fields) {
      EXPECT_EQ(r.get(width), std::optional<uint64_t>(v));
    }
  }
}

TEST(Packet, SerializeParseRoundTrip) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  Packet pkt;
  HeaderValues eth;
  eth.header = "eth";
  eth.values = {0x112233445566, 0x665544332211, 0x0800};
  HeaderValues ipv4;
  ipv4.header = "ipv4";
  const p4::HeaderDef* def = dp.program.find_header("ipv4");
  ipv4.values.assign(def->fields.size(), 0);
  pkt.headers = {eth, ipv4};
  pkt.find("ipv4")->set_field(*def, "dst", 0x0a000001);
  pkt.find("ipv4")->set_field(*def, "ttl", 64);
  pkt.payload = {0xde, 0xad};

  std::vector<uint8_t> bytes = serialize(dp.program, pkt);
  EXPECT_EQ(bytes.size(), 14u + 20u + 2u);  // eth + ipv4 + payload

  auto parsed = parse_as(dp.program, {"eth", "ipv4"}, bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(diff_packets(dp.program, pkt, *parsed).equal);
  EXPECT_EQ(parsed->find("ipv4")->field(*def, "dst"), 0x0a000001u);
  EXPECT_EQ(parsed->payload, (std::vector<uint8_t>{0xde, 0xad}));
}

TEST(Packet, ParseAsRejectsShortInput) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  std::vector<uint8_t> short_bytes(10, 0);
  EXPECT_FALSE(parse_as(dp.program, {"eth"}, short_bytes).has_value());
}

TEST(Packet, DiffReportsFieldLevelDifferences) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  Packet a, b;
  HeaderValues eth;
  eth.header = "eth";
  eth.values = {1, 2, 0x0800};
  a.headers = {eth};
  eth.values = {1, 3, 0x0800};
  b.headers = {eth};
  PacketDiff d = diff_packets(dp.program, a, b);
  EXPECT_FALSE(d.equal);
  ASSERT_EQ(d.differences.size(), 1u);
  EXPECT_NE(d.differences[0].find("eth.src"), std::string::npos);
}

TEST(Checksum, Rfc1071Examples) {
  // Classic RFC 1071 example data.
  std::vector<uint8_t> data = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ones_complement_sum(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<uint16_t>(~0xddf2));
  // Embedding the checksum makes the folded sum 0xffff.
  data.push_back(static_cast<uint8_t>(internet_checksum(data) >> 8));
  data.push_back(static_cast<uint8_t>(internet_checksum(
      std::vector<uint8_t>(data.begin(), data.end() - 1)) & 0xff));
  // (Odd-length handling differs; just verify checksum_ok on a clean pair.)
  std::vector<uint8_t> pair = {0x12, 0x34};
  uint16_t c = internet_checksum(pair);
  pair.push_back(static_cast<uint8_t>(c >> 8));
  pair.push_back(static_cast<uint8_t>(c & 0xff));
  EXPECT_TRUE(checksum_ok(pair));
}

TEST(Checksum, HashAlgosAreStable) {
  // Regression values: device, engine and checker must all agree on these.
  // Ones-complement: 0xdead + 0xbeef = 0x19d9c; fold carry -> 0x9d9d.
  EXPECT_EQ(p4::compute_hash(p4::HashAlgo::kCsum16, {0xdead, 0xbeef},
                             {16, 16}, 16),
            ~uint64_t{0x9d9d} & 0xffff);
  uint64_t crc = p4::compute_hash(p4::HashAlgo::kCrc16, {0x01020304}, {32}, 16);
  EXPECT_EQ(crc, p4::compute_hash(p4::HashAlgo::kCrc16, {0x01020304}, {32}, 16));
  EXPECT_NE(crc, p4::compute_hash(p4::HashAlgo::kCrc16, {0x01020305}, {32}, 16));
  EXPECT_EQ(p4::compute_hash(p4::HashAlgo::kIdentityXor, {0xf0f0, 0x0ff0},
                             {16, 16}, 16),
            0xff00u);
}

}  // namespace
}  // namespace meissa::packet
