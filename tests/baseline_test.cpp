// Tests for the baseline reimplementations: feature gates, verification
// verdicts, unit-test execution, and the p4pktgen action-coverage mode.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "apps/demos.hpp"
#include "baselines/baseline.hpp"
#include "sim/toolchain.hpp"

namespace meissa::baselines {
namespace {

TEST(Gates, P4pktgenRejectsMultiPipeAndProductionFeatures) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig8_plane(ctx);  // two pipes
  BaselineResult r = run_p4pktgen(ctx, dp, {}, nullptr);
  EXPECT_FALSE(r.supported);
  EXPECT_NE(r.unsupported_reason.find("multi-pipeline"), std::string::npos);

  ir::Context ctx2;
  apps::GwConfig cfg;
  cfg.level = 1;
  cfg.elastic_ips = 2;
  apps::AppBundle gw = apps::make_gateway(ctx2, cfg);
  BaselineResult r2 = run_p4pktgen(ctx2, gw.dp, gw.rules, nullptr);
  EXPECT_FALSE(r2.supported);
}

TEST(Gates, GauntletRejectsProductionPrograms) {
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 2;
  cfg.elastic_ips = 2;
  apps::AppBundle gw = apps::make_gateway(ctx, cfg);
  BaselineResult r = run_gauntlet(ctx, gw.dp, gw.rules, nullptr);
  EXPECT_FALSE(r.supported);
}

TEST(P4pktgen, ActionCoverExploresActionSpace) {
  ir::Context rules_ctx;
  apps::AppBundle app = apps::make_router(rules_ctx, 8);
  P4pktgenOptions defaults;
  BaselineResult plain =
      run_p4pktgen(rules_ctx, app.dp, app.rules, nullptr, defaults);
  ASSERT_TRUE(plain.supported);

  ir::Context cover_ctx;
  apps::AppBundle app2 = apps::make_router(cover_ctx, 8);
  P4pktgenOptions cover;
  cover.action_cover = true;
  BaselineResult covered =
      run_p4pktgen(cover_ctx, app2.dp, app2.rules, nullptr, cover);
  ASSERT_TRUE(covered.supported);
  // Action coverage explores per-action branches (with symbolic args),
  // strictly more than default-behaviour-only exploration.
  EXPECT_GT(covered.templates, plain.templates);
}

spec::Intent strict_ttl_intent(ir::Context& ctx, const p4::Program& prog) {
  // Delivered routed traffic MUST have a decremented TTL (strict form).
  spec::IntentBuilder ib(ctx, prog, "strict-ttl");
  ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.eth.type"),
                          ib.num(0x0800, 16)));
  ib.assume(ctx.arena.cmp(ir::CmpOp::kGt, ib.in("hdr.ipv4.ttl"),
                          ib.num(1, 8)));
  ib.expect(ctx.arena.cmp(
      ir::CmpOp::kEq, ib.out("hdr.ipv4.ttl"),
      ctx.arena.arith(ir::ArithOp::kSub, ib.in("hdr.ipv4.ttl"),
                      ib.num(1, 8))));
  return ib.build();
}

TEST(Aquila, VerifiesCleanRouterAndFlagsWrongRule) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  BaselineResult clean = run_aquila(ctx, app.dp, app.rules,
                                    {strict_ttl_intent(ctx, app.dp.program)});
  EXPECT_TRUE(clean.supported);
  EXPECT_EQ(clean.failures, 0u) << "false positive on a clean program";

  // Break the TTL contract in the program: skip the decrement.
  ir::Context ctx2;
  apps::AppBundle buggy = apps::make_router(ctx2, 4);
  for (p4::ActionDef& a : buggy.dp.program.actions) {
    if (a.name == "set_nexthop") a.ops.pop_back();  // drop the ttl update
  }
  BaselineResult r = run_aquila(
      ctx2, buggy.dp, buggy.rules, {strict_ttl_intent(ctx2, buggy.dp.program)});
  EXPECT_GT(r.failures, 0u);
}

TEST(Aquila, CountsItsSmtQueries) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 4);
  BaselineResult r = run_aquila(ctx, app.dp, app.rules, app.intents);
  EXPECT_GT(r.smt_checks, 0u);
  EXPECT_GT(r.templates, 0u);
}

TEST(Pta, RunsHandwrittenCasesAndRespectsDialect) {
  ir::Context ctx;
  p4::DataPlane dp = apps::demos::make_fig7_plane(ctx);
  p4::RuleSet rules = apps::demos::fig7_rules(2);
  sim::Device device(sim::compile(dp, rules, ctx), ctx);

  // Build one passing case from the device itself.
  packet::Packet in;
  packet::HeaderValues eth{"eth", {1, 2, 0x0800}};
  packet::HeaderValues ipv4;
  const p4::HeaderDef* def = dp.program.find_header("ipv4");
  ipv4.header = "ipv4";
  ipv4.values.assign(def->fields.size(), 0);
  in.headers = {eth, ipv4};
  in.find("ipv4")->set_field(*def, "dst", 0x0a000001);
  sim::DeviceInput input{0, packet::serialize(dp.program, in)};
  sim::DeviceOutput expected = device.inject(input);

  PtaCase ok;
  ok.input = input;
  ok.expect_drop = expected.dropped;
  ok.expect_port = expected.port;
  ok.expect_bytes = expected.bytes;
  BaselineResult pass = run_pta({ok}, /*p4_14=*/true, &device);
  EXPECT_TRUE(pass.supported);
  EXPECT_EQ(pass.failures, 0u);

  PtaCase bad = ok;
  bad.expect_port = expected.port + 1;
  BaselineResult fail = run_pta({ok, bad}, /*p4_14=*/true, &device);
  EXPECT_EQ(fail.failures, 1u);

  BaselineResult unsupported = run_pta({ok}, /*p4_14=*/false, &device);
  EXPECT_FALSE(unsupported.supported);
}

TEST(Timeouts, EngineBudgetProducesTimeoutMark) {
  ir::Context ctx;
  apps::SwitchP4Config cfg;
  cfg.routes = 24;
  apps::AppBundle app = apps::make_switchp4(ctx, cfg);
  GauntletOptions opts;
  opts.time_budget_seconds = 0.001;  // absurdly small
  BaselineResult r = run_gauntlet(ctx, app.dp, app.rules, nullptr, opts);
  EXPECT_TRUE(r.supported);
  EXPECT_TRUE(r.timed_out);
}

}  // namespace
}  // namespace meissa::baselines
