// Crash-safe checkpointing (driver/checkpoint): payload round-trips are
// name-based (a fresh Context re-serializes to the same bytes), the file
// image rejects every corruption class (magic, version, key, truncation,
// payload bit-flips) via its CRC, the manager falls back to `.prev` when
// the current file fails validation, and an engine-level mid-flight
// frontier resumes to the exact result stream of an uninterrupted run.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "apps/apps.hpp"
#include "driver/checkpoint.hpp"
#include "driver/generator.hpp"
#include "sym/engine.hpp"
#include "testlib.hpp"

namespace meissa {
namespace {

// A per-test scratch directory, cleaned on entry (stale state from a
// previous run must never validate a test).
std::string temp_dir(const std::string& name) {
  std::filesystem::path p =
      std::filesystem::temp_directory_path() / ("m4ckpt_" + name);
  std::filesystem::remove_all(p);
  return p.string();
}

std::vector<uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Real DFS results + per-shard snapshots from the Fig. 7 running example:
// run the sharded engine with a cadence-1 progress hook and keep every
// snapshot — exactly the write sequence a checkpointing run produces.
struct CapturedRun {
  std::vector<sym::PathResult> results;
  std::vector<std::vector<sym::ShardProgress>> snapshots;  // per shard
  std::vector<sym::ShardProgress> final_state;             // last per shard
};

CapturedRun run_fig7_captured(ir::Context& ctx, const cfg::Cfg& g) {
  CapturedRun run;
  std::mutex mu;
  sym::Engine eng(ctx, g);
  sym::ParallelHooks hooks;
  hooks.checkpoint_every = 1;
  hooks.on_shards = [&](size_t n) {
    std::lock_guard<std::mutex> lk(mu);
    run.snapshots.assign(n, {});
    run.final_state.assign(n, {});
  };
  hooks.progress = [&](size_t i, const sym::ShardProgress& p) {
    std::lock_guard<std::mutex> lk(mu);
    run.snapshots[i].push_back(p);
    run.final_state[i] = p;
  };
  eng.run_parallel([&](const sym::PathResult& r) { run.results.push_back(r); },
                   4, hooks);
  return run;
}

std::vector<std::string> render(ir::Context& ctx,
                                const std::vector<sym::PathResult>& rs) {
  std::vector<std::string> out;
  for (const sym::PathResult& r : rs) {
    std::ostringstream os;
    for (cfg::NodeId n : r.path) os << n << " ";
    os << "| " << ir::to_string(ctx.arena.all_of(r.conds), ctx.fields);
    out.push_back(os.str());
  }
  return out;
}

driver::CheckpointData make_fig7_data(ir::Context& ctx, const cfg::Cfg& g) {
  CapturedRun run = run_fig7_captured(ctx, g);
  driver::CheckpointData d;
  d.shards = run.final_state;
  summary::SummaryUnit u;
  u.instance = "p0";
  u.paths_after = run.results.size();
  u.smt_checks = 17;
  u.smt_skipped = 3;
  u.seconds = 0.25;
  u.internal = run.results;
  u.seed_snaps.push_back({"@p0.hdr.f1", "hdr.f1", 8});
  d.units[u.instance] = u;
  return d;
}

TEST(Crc32, KnownAnswer) {
  const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(driver::crc32(check, sizeof(check)), 0xCBF43926u);
  EXPECT_EQ(driver::crc32(nullptr, 0), 0u);
}

TEST(Checkpoint, PayloadRoundTripIsNameBased) {
  ir::Context ctx1;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx1);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx1);
  driver::CheckpointData d = make_fig7_data(ctx1, g);
  ASSERT_FALSE(d.shards.empty());
  const std::vector<uint8_t> bytes1 = driver::serialize_checkpoint(ctx1, d);

  // Deserialize into a *fresh* Context — FieldId numbering there genuinely
  // differs — and re-serialize: the payload must be byte-identical, which
  // is only possible if every reference went through names.
  ir::Context ctx2;
  driver::CheckpointData d2 = driver::deserialize_checkpoint(ctx2, bytes1);
  EXPECT_EQ(d2.units.size(), d.units.size());
  ASSERT_EQ(d2.shards.size(), d.shards.size());
  for (size_t i = 0; i < d.shards.size(); ++i) {
    EXPECT_EQ(d2.shards[i].done, d.shards[i].done) << "shard " << i;
    EXPECT_EQ(d2.shards[i].results.size(), d.shards[i].results.size());
    EXPECT_EQ(d2.shards[i].frontier, d.shards[i].frontier);
    EXPECT_EQ(d2.shards[i].fresh_counter, d.shards[i].fresh_counter);
  }
  const std::vector<uint8_t> bytes2 = driver::serialize_checkpoint(ctx2, d2);
  EXPECT_EQ(bytes2, bytes1);
}

TEST(Checkpoint, TruncatedPayloadThrowsNotCrashes) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(2), ctx);
  std::vector<uint8_t> bytes =
      driver::serialize_checkpoint(ctx, make_fig7_data(ctx, g));
  ASSERT_GT(bytes.size(), 8u);
  bytes.resize(bytes.size() / 2);
  ir::Context fresh;
  EXPECT_THROW(driver::deserialize_checkpoint(fresh, bytes), util::Error);
}

TEST(Checkpoint, FileImageRejectsEveryCorruptionClass) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);
  driver::CheckpointData d = make_fig7_data(ctx, g);
  const uint64_t key = 0x1122334455667788ull;
  const std::vector<uint8_t> image = driver::encode_checkpoint_file(ctx, key, d);

  ir::Context fresh;
  ASSERT_TRUE(driver::decode_checkpoint_file(fresh, key, image).has_value());

  // Wrong content key: a checkpoint from another program/config.
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key + 1, image));

  // Bad magic and bad version.
  std::vector<uint8_t> bad = image;
  bad[0] ^= 0xFF;
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));
  bad = image;
  bad[8] ^= 0xFF;  // version u32 follows the 8-byte magic
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));

  // Truncation: drop the tail (a crash mid-write).
  bad = image;
  bad.resize(bad.size() - 7);
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));
  bad.clear();
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));

  // A single flipped payload bit must fail the CRC.
  bad = image;
  bad[bad.size() - 1] ^= 0x10;
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));
  bad = image;
  bad[bad.size() / 2] ^= 0x01;
  EXPECT_FALSE(driver::decode_checkpoint_file(fresh, key, bad));
}

TEST(Checkpoint, ManagerPersistsAndReloads) {
  const std::string dir = temp_dir("manager");
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);
  driver::CheckpointData d = make_fig7_data(ctx, g);
  const uint64_t key = 42;
  {
    driver::CheckpointManager m(ctx, dir, key);
    m.begin_shards(d.shards.size());
    for (size_t i = 0; i < d.shards.size(); ++i) m.update_shard(i, d.shards[i]);
    m.add_unit(d.units.at("p0"));
    EXPECT_GE(m.writes(), d.shards.size() + 1);  // begin_shards persists too
    EXPECT_EQ(m.failures(), 0u);
  }
  ir::Context fresh;
  driver::CheckpointManager m2(fresh, dir, key);
  driver::CheckpointData loaded;
  ASSERT_TRUE(m2.load(loaded));
  EXPECT_EQ(loaded.units.count("p0"), 1u);
  EXPECT_EQ(loaded.shards.size(), d.shards.size());

  // The same directory under a different content key finds nothing.
  driver::CheckpointManager wrong(fresh, dir, key + 1);
  driver::CheckpointData none;
  EXPECT_FALSE(wrong.load(none));
}

TEST(Checkpoint, CorruptCurrentFallsBackToPrev) {
  const std::string dir = temp_dir("fallback");
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);
  driver::CheckpointData d = make_fig7_data(ctx, g);
  const uint64_t key = 7;
  std::string current;
  {
    driver::CheckpointManager m(ctx, dir, key);
    current = m.path();
    summary::SummaryUnit u = d.units.at("p0");
    m.add_unit(u);      // write 1 → becomes .prev
    u.instance = "p1";  // write 2 → current (two units)
    m.add_unit(u);
    EXPECT_EQ(m.writes(), 2u);
  }
  // Flip one byte of the current file: the crash left torn data on disk.
  std::vector<uint8_t> bytes = read_all(current);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x40;
  write_all(current, bytes);

  ir::Context fresh;
  driver::CheckpointManager m2(fresh, dir, key);
  driver::CheckpointData loaded;
  ASSERT_TRUE(m2.load(loaded));  // .prev: one checkpoint interval lost
  EXPECT_EQ(loaded.units.size(), 1u);
  EXPECT_EQ(loaded.units.count("p0"), 1u);

  // With .prev gone too, the load reports nothing rather than bad data.
  std::filesystem::remove(current + ".prev");
  driver::CheckpointManager m3(fresh, dir, key);
  driver::CheckpointData none;
  EXPECT_FALSE(m3.load(none));
}

TEST(Checkpoint, InjectedWriteCorruptionCostsOneInterval) {
  const std::string dir = temp_dir("injected");
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);
  driver::CheckpointData d = make_fig7_data(ctx, g);
  const uint64_t key = 9;
  util::FaultInjector inj;
  // Corrupt the *second* write's bytes on their way to disk.
  inj.add(util::parse_fault_spec("checkpoint.write:corrupt:1:100:1"));
  {
    driver::CheckpointManager m(ctx, dir, key, &inj);
    summary::SummaryUnit u = d.units.at("p0");
    m.add_unit(u);
    u.instance = "p1";
    m.add_unit(u);  // damaged image lands in checkpoint.bin
    EXPECT_EQ(inj.fired(), 1u);
  }
  ir::Context fresh;
  driver::CheckpointManager m2(fresh, dir, key);
  driver::CheckpointData loaded;
  ASSERT_TRUE(m2.load(loaded));  // falls back to the first write
  EXPECT_EQ(loaded.units.size(), 1u);
}

TEST(Checkpoint, InjectedSerializeAbortCountsAsFailure) {
  const std::string dir = temp_dir("serfail");
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(2), ctx);
  driver::CheckpointData d = make_fig7_data(ctx, g);
  util::FaultInjector inj;
  inj.add(util::parse_fault_spec("checkpoint.serialize:abort:0:0:1"));
  driver::CheckpointManager m(ctx, dir, 1, &inj);
  summary::SummaryUnit u = d.units.at("p0");
  m.add_unit(u);  // injected abort: counted, never thrown
  EXPECT_EQ(m.failures(), 1u);
  EXPECT_EQ(m.writes(), 0u);
  u.instance = "p1";
  m.add_unit(u);  // fault consumed: the next persist succeeds
  EXPECT_EQ(m.writes(), 1u);
  EXPECT_EQ(m.failures(), 1u);
}

TEST(ContentKey, DiscriminatesInventoryAndOutputAffectingOptions) {
  ir::Context ctx;
  apps::AppBundle app = apps::make_router(ctx, 6);
  driver::GenOptions opts;
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx, opts.build);

  const uint64_t base = driver::checkpoint_content_key(ctx, g, opts);
  EXPECT_EQ(driver::checkpoint_content_key(ctx, g, opts), base);

  // A different pipeline inventory → a different key.
  ir::Context ctx2;
  apps::AppBundle app2 = apps::make_mtag(ctx2, 4);
  cfg::Cfg g2 = cfg::build_cfg(app2.dp, app2.rules, ctx2, opts.build);
  EXPECT_NE(driver::checkpoint_content_key(ctx2, g2, opts), base);

  // A *content* change with the same inventory (fewer routes installed)
  // keeps the key: program content is tracked per region by the payload
  // fingerprints, so a localized edit degrades the checkpoint instead of
  // rejecting it wholesale.
  ir::Context ctx3;
  apps::AppBundle app3 = apps::make_router(ctx3, 4);
  cfg::Cfg g3 = cfg::build_cfg(app3.dp, app3.rules, ctx3, opts.build);
  EXPECT_EQ(driver::checkpoint_content_key(ctx3, g3, opts), base);

  // Output-affecting options change the key...
  driver::GenOptions changed = opts;
  changed.max_templates = 3;
  EXPECT_NE(driver::checkpoint_content_key(ctx, g, changed), base);
  changed = opts;
  changed.code_summary = false;
  EXPECT_NE(driver::checkpoint_content_key(ctx, g, changed), base);
  changed = opts;
  changed.smt_budget.max_conflicts = 1;
  EXPECT_NE(driver::checkpoint_content_key(ctx, g, changed), base);

  // ...output-neutral ones (threads, cadence, static pruning) must not:
  // a checkpoint is resumable under a different thread count.
  changed = opts;
  changed.threads = 7;
  changed.checkpoint_every = 1;
  changed.static_pruning = !opts.static_pruning;
  EXPECT_EQ(driver::checkpoint_content_key(ctx, g, changed), base);
}

TEST(Fingerprints, LoadFiltersStaleUnitsAndFrontiers) {
  const std::string dir = temp_dir("fpfilter");
  const uint64_t key = 42;

  // Hand-built fingerprints: two regions, B downstream of A.
  analysis::RegionFingerprints fps;
  fps.instances = {"A", "B"};
  fps.region = {{"A", 11}, {"B", 22}};
  fps.upstream = {{"A", {}}, {"B", {"A"}}};
  fps.glue = 7;
  fps.whole = 100;

  ir::Context ctx;
  {
    driver::CheckpointManager m(ctx, dir, key, nullptr, fps);
    summary::SummaryUnit ua;
    ua.instance = "A";
    m.add_unit(ua);
    summary::SummaryUnit ub;
    ub.instance = "B";
    m.add_unit(ub);
    m.begin_shards(1);
    m.update_shard(0, {});
    EXPECT_GT(m.writes(), 0u);
  }

  // Same build: everything survives.
  {
    ir::Context fresh;
    driver::CheckpointManager m(fresh, dir, key, nullptr, fps);
    driver::CheckpointData out;
    ASSERT_TRUE(m.load(out));
    EXPECT_EQ(out.units.size(), 2u);
    EXPECT_EQ(out.shards.size(), 1u);
  }

  // B's region changed (content edit): B's unit is dropped, A's — whose
  // region and (empty) upstream still match — survives. The whole-graph
  // hash moved too, so the DFS frontier (absolute node ids) is cleared.
  {
    analysis::RegionFingerprints cur = fps;
    cur.region["B"] = 33;
    cur.whole = 101;
    ir::Context fresh;
    driver::CheckpointManager m(fresh, dir, key, nullptr, cur);
    driver::CheckpointData out;
    ASSERT_TRUE(m.load(out));
    EXPECT_EQ(out.units.size(), 1u);
    EXPECT_EQ(out.units.count("A"), 1u);
    EXPECT_TRUE(out.shards.empty());
  }

  // A's region changed: A is dropped directly, and B is dropped because
  // its *upstream* no longer matches — a changed upstream region changes
  // the pre-conditions B was summarized under.
  {
    analysis::RegionFingerprints cur = fps;
    cur.region["A"] = 99;
    cur.whole = 102;
    ir::Context fresh;
    driver::CheckpointManager m(fresh, dir, key, nullptr, cur);
    driver::CheckpointData out;
    EXPECT_FALSE(m.load(out));
  }

  // Glue changed: inter-pipeline hand-off is suspect — nothing survives.
  {
    analysis::RegionFingerprints cur = fps;
    cur.glue = 8;
    cur.whole = 103;
    ir::Context fresh;
    driver::CheckpointManager m(fresh, dir, key, nullptr, cur);
    driver::CheckpointData out;
    EXPECT_FALSE(m.load(out));
  }
}

TEST(Resume, EngineMidFlightFrontierMatchesUninterrupted) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  cfg::Cfg g = cfg::build_cfg(dp, testlib::fig7_rules(3), ctx);
  CapturedRun run = run_fig7_captured(ctx, g);
  const std::vector<std::string> base = render(ctx, run.results);
  ASSERT_FALSE(base.empty());

  // Round-trip the snapshots through the serialized format — resume must
  // work from *deserialized* state, exactly as after a real kill.
  driver::CheckpointData d;
  d.shards = run.final_state;
  const std::vector<uint8_t> bytes = driver::serialize_checkpoint(ctx, d);

  // Case 1: every shard done (the kill landed after the DFS finished).
  {
    ir::Context c2;
    p4::DataPlane dp2 = testlib::make_fig7_plane(c2);
    cfg::Cfg g2 = cfg::build_cfg(dp2, testlib::fig7_rules(3), c2);
    driver::CheckpointData prior = driver::deserialize_checkpoint(c2, bytes);
    sym::Engine eng(c2, g2);
    sym::ParallelHooks hooks;
    hooks.resume = &prior.shards;
    std::vector<sym::PathResult> got;
    eng.run_parallel([&](const sym::PathResult& r) { got.push_back(r); }, 4,
                     hooks);
    EXPECT_EQ(render(c2, got), base);
    EXPECT_EQ(eng.stats().resumed_shards, prior.shards.size());
  }

  // Case 2: mid-flight — for every shard that emitted results, resume from
  // its *first* cadence snapshot (the rest of the subtree re-explores from
  // the frontier); untouched shards restart from scratch.
  {
    driver::CheckpointData mid;
    mid.shards.assign(run.final_state.size(), {});
    size_t mid_shards = 0;
    for (size_t i = 0; i < run.snapshots.size(); ++i) {
      if (!run.snapshots[i].empty() && !run.snapshots[i][0].done) {
        mid.shards[i] = run.snapshots[i][0];
        ++mid_shards;
      }
    }
    ASSERT_GT(mid_shards, 0u);
    const std::vector<uint8_t> mid_bytes =
        driver::serialize_checkpoint(ctx, mid);

    ir::Context c2;
    p4::DataPlane dp2 = testlib::make_fig7_plane(c2);
    cfg::Cfg g2 = cfg::build_cfg(dp2, testlib::fig7_rules(3), c2);
    driver::CheckpointData prior =
        driver::deserialize_checkpoint(c2, mid_bytes);
    sym::Engine eng(c2, g2);
    sym::ParallelHooks hooks;
    hooks.resume = &prior.shards;
    std::vector<sym::PathResult> got;
    eng.run_parallel([&](const sym::PathResult& r) { got.push_back(r); }, 4,
                     hooks);
    EXPECT_EQ(render(c2, got), base);
    EXPECT_EQ(eng.stats().resumed_shards, mid_shards);
  }
}

}  // namespace
}  // namespace meissa
