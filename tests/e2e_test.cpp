// End-to-end integration tests: generate test cases, inject them into the
// behavioral device, and check the report — on clean compiles (everything
// passes) and with injected toolchain faults (failures detected).
#include <gtest/gtest.h>

#include "driver/tester.hpp"
#include "sim/toolchain.hpp"
#include "testlib.hpp"

namespace meissa::driver {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  TestReport run(const p4::DataPlane& dp, const p4::RuleSet& rules,
                 ir::Context& ctx, sim::FaultSpec fault = {},
                 std::vector<spec::Intent> intents = {},
                 TestRunOptions opts = {}) {
    sim::DeviceProgram compiled = sim::compile(dp, rules, ctx, fault);
    sim::Device device(compiled, ctx);
    Meissa meissa(ctx, dp, rules, opts);
    return meissa.test(device, intents);
  }
};

TEST_F(EndToEnd, Fig7CleanCompilePassesAllCases) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  TestReport r = run(dp, rules, ctx);
  EXPECT_EQ(r.templates, 5u);
  EXPECT_EQ(r.cases, 5u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST_F(EndToEnd, Fig8CleanCompilePassesAllCases) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  TestReport r = run(dp, rules, ctx);
  EXPECT_EQ(r.templates, 5u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST_F(EndToEnd, Fig7WithoutSummaryAlsoPasses) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  TestRunOptions opts;
  opts.gen.code_summary = false;
  TestReport r = run(dp, rules, ctx, {}, {}, opts);
  EXPECT_EQ(r.cases, 5u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST_F(EndToEnd, OverlappingRoutesAgreeAcrossEngineAndDevice) {
  // Divergence regression: the symbolic engine's branch order
  // (RuleSet::ordered_entries) and the device's concrete best-hit scan
  // share p4::entry_rank, so a /24 installed after a covering /16 must
  // yield passing cases for both routes — an install-order-first device
  // would answer the /24's test traffic with the /16's port and fail.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  for (p4::TableDef& t : dp.program.tables) {
    if (t.name == "ipv4_host") t.keys[0].kind = p4::MatchKind::kLpm;
  }
  p4::RuleSet rules;
  p4::TableEntry wide;
  wide.table = "ipv4_host";
  wide.matches = {p4::KeyMatch::lpm(0x0a000000, 16)};
  wide.action = "set_port";
  wide.args = {1};
  rules.add(wide);
  p4::TableEntry narrow = wide;
  narrow.matches = {p4::KeyMatch::lpm(0x0a000200, 24)};
  narrow.args = {2};
  rules.add(narrow);
  for (uint64_t port : {uint64_t{1}, uint64_t{2}}) {
    p4::TableEntry mac;
    mac.table = "mac_agent";
    mac.matches = {p4::KeyMatch::exact(port)};
    mac.action = "set_dmac";
    mac.args = {0xaa0000000000ull + port};
    rules.add(mac);
  }
  TestReport r = run(dp, rules, ctx);
  EXPECT_GT(r.templates, 2u);
  EXPECT_TRUE(r.all_passed()) << r.str();
}

TEST_F(EndToEnd, DroppedAssignmentFaultIsDetected) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kDropAssignment;
  fault.action = "set_dmac";  // device forgets to rewrite the MAC
  TestReport r = run(dp, rules, ctx, fault);
  EXPECT_GT(r.failed, 0u);
  // The diagnosis names the field that diverged.
  ASSERT_FALSE(r.failures.empty());
  bool mentions_dst = false;
  for (const std::string& p : r.failures[0].model_problems) {
    mentions_dst |= p.find("eth.dst") != std::string::npos;
  }
  EXPECT_TRUE(mentions_dst) << r.str();
}

TEST_F(EndToEnd, WrongDefaultActionFaultIsDetected) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kWrongDefaultAction;
  fault.table = "ipv4_host";  // miss no longer drops
  TestReport r = run(dp, rules, ctx, fault);
  EXPECT_GT(r.failed, 0u);
}

TEST_F(EndToEnd, SwappedAssignmentFaultIsDetected) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kSwappedAssignments;
  fault.action = "set_port";  // only one assignment: no effect expected
  TestReport r = run(dp, rules, ctx, fault);
  EXPECT_TRUE(r.all_passed()) << "single-assignment action cannot swap";

  ir::Context ctx2;
  p4::DataPlane dp2 = testlib::make_fig7_plane(ctx2);
  p4::RuleSet rules2 = testlib::fig7_rules(2);
  // Give set_dmac a second assignment so the swap has something to do:
  // it also writes eth.src.
  for (p4::ActionDef& a : dp2.program.actions) {
    if (a.name == "set_dmac") {
      a.ops.push_back(p4::ActionOp::assign(
          "hdr.eth.src", ctx2.field_var(p4::param_field("set_dmac", "mac"),
                                        48)));
    }
  }
  sim::FaultSpec fault2;
  fault2.kind = sim::FaultKind::kSwappedAssignments;
  fault2.action = "set_dmac";
  TestReport r2 = run(dp2, rules2, ctx2, fault2);
  // dst/src both get the same value here, so swapping dests is only
  // observable when old values differ — the model expects dst=src=mac,
  // the device computes them in swapped order; with equal RHS the swap is
  // benign. Accept either outcome but require the run to complete.
  EXPECT_GT(r2.cases, 0u);
}

TEST_F(EndToEnd, ParserSelectFaultIsDetected) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kParserSkipSelect;
  fault.parser_state = "start";  // ipv4 is never parsed on the device
  TestReport r = run(dp, rules, ctx, fault);
  EXPECT_GT(r.failed, 0u);
}

TEST_F(EndToEnd, MetadataGarbageFaultIsDetected) {
  // A program that branches on a metadata flag it never initializes
  // explicitly (relying on the toolchain's zero-init): the fault makes
  // the device take the wrong branch.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  // meta.l4_kind defaults to 0; egress sets 6/17. Add an ingress guard
  // that only forwards when meta.l4_kind == 0 at entry (always true when
  // zeroed, garbage otherwise).
  p4::PipelineDef& ig = dp.program.pipelines[0];
  p4::ControlBlock guarded;
  guarded.stmts.push_back(p4::ControlStmt::if_else(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var("meta.l4_kind", 8),
                    ctx.arena.constant(0, 8)),
      ig.control));
  ig.control = guarded;
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kSkipMetadataZero;
  TestReport r = run(dp, rules, ctx, fault);
  EXPECT_GT(r.failed, 0u) << r.str();
}

TEST_F(EndToEnd, FailureReportsCarryTraces) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  sim::FaultSpec fault;
  fault.kind = sim::FaultKind::kDropAssignment;
  fault.action = "set_dmac";
  TestReport r = run(dp, rules, ctx, fault);
  ASSERT_FALSE(r.failures.empty());
  EXPECT_FALSE(r.failures[0].symbolic_trace.empty());
  EXPECT_FALSE(r.failures[0].physical_trace.empty());
  EXPECT_NE(r.str().find("FAIL"), std::string::npos);
}

TEST_F(EndToEnd, IntentViolationDetectedOnCorrectCompile) {
  // A *code bug* scenario: the program forwards host 0 to port 1, but the
  // operator's intent says packets to host 0 must be dropped. Compile is
  // clean; only the intent check can catch it.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(2);
  spec::IntentBuilder ib(ctx, dp.program, "blocklist-host0");
  ib.assume(ctx.arena.cmp(ir::CmpOp::kEq, ib.in("hdr.ipv4.dst"),
                          ib.num(0x0a000000, 32)));
  ib.expect_dropped();
  TestReport r = run(dp, rules, ctx, {}, {ib.build()});
  EXPECT_GT(r.failed, 0u);
  bool intent_flagged = false;
  for (const CaseRecord& f : r.failures) {
    intent_flagged |= !f.intent_problems.empty();
  }
  EXPECT_TRUE(intent_flagged) << r.str();
}

TEST_F(EndToEnd, GenerationAssumesRestrictTemplates) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  TestRunOptions opts;
  // Only test IPv4 traffic to host 1 (the §6 per-sub-case workflow).
  opts.gen.assumes.push_back(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var("in.hdr.ipv4.dst", 32),
                    ctx.arena.constant(0x0a000001, 32)));
  TestReport r = run(dp, rules, ctx, {}, {}, opts);
  EXPECT_EQ(r.templates, 2u);  // host-1 path + non-ip path
  EXPECT_TRUE(r.all_passed()) << r.str();
}

}  // namespace
}  // namespace meissa::driver
