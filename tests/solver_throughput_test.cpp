// Tests for the solver-throughput layer: the canonicalized path-condition
// cache, the adaptive fast-path/bit-blasting portfolio, learned-clause
// database hygiene (reduce_learnts bookkeeping + level-0 garbage
// collection), the bounded bit-blaster caches, and the stats_minus
// rebasing helper.
#include <gtest/gtest.h>

#include <vector>

#include "smt/bv_solver.hpp"
#include "smt/cache.hpp"
#include "smt/sat.hpp"
#include "smt/solver.hpp"
#include "util/bits.hpp"
#include "util/rng.hpp"

namespace meissa::smt {
namespace {

using ir::CmpOp;
using ir::ExprRef;

// ------------------------------------------------- reduce_learnts hygiene

TEST(SatReduce, LearnedCountStaysExactAcrossReductions) {
  // Regression: reduce_learnts used to halve num_learned_ while actually
  // removing learned.size()/2 clauses, where `learned` excludes reason-
  // pinned (and now binary) clauses — so the counter drifted below the
  // real database size and stretched the reduction cadence. The invariant
  // is exact equality with the database, after every solve.
  util::Rng rng(11);
  SatSolver s;
  s.set_reduce_threshold(4);  // force frequent reductions
  // Near the 3-SAT phase transition (ratio ~4.3) so every round generates
  // real conflicts and learned clauses; sparser batches solve conflict-free
  // and the reduction path never runs.
  const int nvars = 20;
  std::vector<uint32_t> vars;
  for (int i = 0; i < nvars; ++i) vars.push_back(s.new_var());
  for (int round = 0; round < 40; ++round) {
    // One selector-guarded batch per round, retired afterwards — the
    // incremental push/pop pattern that leaves level-0-satisfied garbage.
    Lit sel = Lit::make(s.new_var(), false);
    for (int c = 0; c < 85; ++c) {
      std::vector<Lit> cl{~sel};
      for (int k = 0; k < 3; ++k) {
        cl.push_back(Lit::make(vars[rng.below(nvars)], rng.chance(1, 2)));
      }
      s.add_clause(std::move(cl));
    }
    s.solve({sel});
    ASSERT_EQ(s.num_learned(), s.learned_in_db()) << "round " << round;
    s.add_unit(~sel);  // retire the batch (what pop() does)
  }
  EXPECT_GT(s.stats().reduces, 0u);
  // The retired selectors' guarded clauses are permanently satisfied at
  // level 0 and must have been collected, not just the low-activity half.
  EXPECT_GT(s.stats().removed_satisfied, 0u);
}

TEST(SatReduce, ThresholdGrowsAfterEachReduction) {
  SatSolver s;
  s.set_reduce_threshold(4);
  util::Rng rng(3);
  const int nvars = 24;
  std::vector<uint32_t> vars;
  for (int i = 0; i < nvars; ++i) vars.push_back(s.new_var());
  while (s.stats().reduces == 0) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k) {
      cl.push_back(Lit::make(vars[rng.below(nvars)], rng.chance(1, 2)));
    }
    if (!s.add_clause(std::move(cl))) break;  // hit global unsat: done
    if (!s.solve({})) break;
  }
  ASSERT_GT(s.stats().reduces, 0u);
  EXPECT_GT(s.reduce_threshold(), 4u);
}

// ------------------------------------------ fast path vs. full bit-blasting

// Random conjunction over two fields drawn from the masked-compare shapes
// the engine produces. Some land in the fast path's fragment, some don't;
// either way both backends must agree on the verdict.
TEST(BvSolverDifferential, FastPathNeverDisagreesWithBitBlasting) {
  util::Rng rng(23);
  for (int round = 0; round < 60; ++round) {
    ir::Context ctx;
    BvSolver fast(ctx);
    BvSolver blast(ctx);
    blast.set_force_blast(true);
    ExprRef f = ctx.field_var("f", 8);
    ExprRef g = ctx.field_var("g", 16);
    const int n = 1 + static_cast<int>(rng.below(5));
    for (int i = 0; i < n; ++i) {
      ExprRef base = rng.chance(1, 2) ? f : g;
      const int w = base->width;
      const uint64_t mask = rng.bits(w);
      const uint64_t value = rng.bits(w);
      ExprRef e;
      switch (rng.below(4)) {
        case 0: e = ctx.arena.masked_eq(base, mask, value & mask); break;
        case 1:
          e = ctx.arena.cmp(CmpOp::kNe,
                            ctx.arena.arith(ir::ArithOp::kAnd, base,
                                            ctx.arena.constant(mask, w)),
                            ctx.arena.constant(value & mask, w));
          break;
        case 2: e = ctx.arena.cmp(CmpOp::kLt, base,
                                  ctx.arena.constant(value, w)); break;
        default: e = ctx.arena.cmp(CmpOp::kGe, base,
                                   ctx.arena.constant(value, w)); break;
      }
      fast.add(e);
      blast.add(e);
    }
    CheckResult a = fast.check();
    CheckResult b = blast.check();
    ASSERT_NE(a, CheckResult::kUnknown) << "round " << round;
    ASSERT_NE(b, CheckResult::kUnknown) << "round " << round;
    EXPECT_EQ(a, b) << "round " << round;
    EXPECT_EQ(blast.stats().fast_path_hits, 0u);  // really forced to blast
  }
}

// --------------------------------------------------------- bandit portfolio

TEST(BvSolverPortfolio, SkipsLosingFastPathAndKeepsVerdicts) {
  ir::Context ctx;
  BvSolver s(ctx);
  s.set_portfolio(true);
  s.set_region(42);
  ExprRef f = ctx.field_var("f", 16);
  // (f & 0x0f0f) < k is outside the fast path's fragment (masked compare
  // with an order relation): every attempt loses to the SAT core. After
  // the 16-try warm-up the bandit must start routing straight to blasting.
  ExprRef masked = ctx.arena.arith(ir::ArithOp::kAnd, f,
                                   ctx.arena.constant(0x0f0f, 16));
  for (int i = 0; i < 64; ++i) {
    s.push();
    s.add(ctx.arena.cmp(CmpOp::kLt, masked,
                        ctx.arena.constant(1 + (i % 200), 16)));
    EXPECT_EQ(s.check(), CheckResult::kSat) << "check " << i;
    s.pop();
  }
  EXPECT_GT(s.stats().fast_path_skipped, 0u);
  EXPECT_EQ(s.stats().fast_path_hits, 0u);
  EXPECT_GT(s.portfolio_sat_wins(), 0u);
  EXPECT_EQ(s.portfolio_fast_wins(), 0u);
}

TEST(BvSolverPortfolio, WinningFastPathIsNeverSkipped) {
  ir::Context ctx;
  BvSolver s(ctx);
  s.set_portfolio(true);
  s.set_region(7);
  ExprRef f = ctx.field_var("f", 16);
  for (int i = 0; i < 64; ++i) {
    s.push();
    s.add(ctx.arena.cmp(CmpOp::kEq, f, ctx.arena.constant(i, 16)));
    EXPECT_EQ(s.check(), CheckResult::kSat);
    s.pop();
  }
  EXPECT_EQ(s.stats().fast_path_skipped, 0u);
  EXPECT_EQ(s.stats().fast_path_hits, 64u);
}

// ------------------------------------------------ bounded bit-blast caches

TEST(BitBlastCache, TinyCapKeepsVerdictsAndFieldIdentity) {
  // Epoch-clearing the translation caches must never clear field identity:
  // a field constrained before a clear must still be the same SAT
  // variables after it, or contradictions across the clear would be lost.
  ir::Context ctx;
  BvSolver capped(ctx);
  capped.set_force_blast(true);   // every check exercises the blaster
  capped.set_blast_cache_cap(2);  // clear on essentially every blast
  BvSolver plain(ctx);
  plain.set_force_blast(true);
  ExprRef f = ctx.field_var("f", 16);
  ExprRef g = ctx.field_var("g", 16);
  auto both_add = [&](ExprRef e) {
    capped.add(e);
    plain.add(e);
  };
  auto expect_agree = [&](int where) {
    CheckResult a = capped.check();
    CheckResult b = plain.check();
    EXPECT_EQ(a, b) << "step " << where;
    return a;
  };
  both_add(ctx.arena.cmp(CmpOp::kEq, f, ctx.arena.constant(5, 16)));
  EXPECT_EQ(expect_agree(1), CheckResult::kSat);
  both_add(ctx.arena.cmp(CmpOp::kLt, g, ctx.arena.constant(100, 16)));
  EXPECT_EQ(expect_agree(2), CheckResult::kSat);
  // The contradiction spans an epoch clear: f was blasted before, f==6
  // after. Fresh field bits here would silently make this satisfiable.
  both_add(ctx.arena.cmp(CmpOp::kEq, f, ctx.arena.constant(6, 16)));
  EXPECT_EQ(expect_agree(3), CheckResult::kUnsat);
}

// ------------------------------------------------- path-condition cache

TEST(PathCondCache, SignatureIsCommutativeAndInvertible) {
  // Conjunction is commutative: two explorations asserting the same
  // conjunct set in different orders must land on the same key. And
  // retract() must exactly undo extend() so the DFS can unwind the
  // signature at rollback.
  ir::Context ctx;
  ExprRef a = ctx.arena.cmp(CmpOp::kEq, ctx.field_var("a", 8),
                            ctx.arena.constant(1, 8));
  ExprRef b = ctx.arena.cmp(CmpOp::kLt, ctx.field_var("b", 8),
                            ctx.arena.constant(9, 8));
  ExprRef c = ctx.arena.cmp(CmpOp::kNe, ctx.field_var("c", 8),
                            ctx.arena.constant(3, 8));
  const PathSig root;
  PathSig ab = PathCondCache::extend(PathCondCache::extend(root, a), b);
  PathSig ba = PathCondCache::extend(PathCondCache::extend(root, b), a);
  EXPECT_EQ(ab, ba);
  PathSig abc = PathCondCache::extend(ab, c);
  EXPECT_FALSE(abc == ab);  // a different set forks the key
  EXPECT_EQ(PathCondCache::retract(abc, c), ab);
  EXPECT_EQ(PathCondCache::retract(PathCondCache::retract(ab, b), a), root);
  // A verdict recorded under one shard's key hits the other shard's
  // permutation of the same set.
  PathCondCache cache;
  cache.insert(ab, CheckResult::kSat);
  CheckResult out = CheckResult::kUnknown;
  ASSERT_TRUE(cache.lookup(ba, &out));
  EXPECT_EQ(out, CheckResult::kSat);
  EXPECT_FALSE(cache.lookup(abc, &out));  // larger set: its own entry
}

TEST(PathCondCache, StoresDefiniteVerdictsOnly) {
  ir::Context ctx;
  ExprRef a = ctx.arena.cmp(CmpOp::kEq, ctx.field_var("a", 8),
                            ctx.arena.constant(1, 8));
  ExprRef b = ctx.arena.cmp(CmpOp::kEq, ctx.field_var("b", 8),
                            ctx.arena.constant(2, 8));
  PathCondCache cache;
  PathSig ka = PathCondCache::extend(PathSig{}, a);
  PathSig kb = PathCondCache::extend(PathSig{}, b);
  CheckResult out = CheckResult::kUnknown;
  EXPECT_FALSE(cache.lookup(ka, &out));
  cache.insert(ka, CheckResult::kSat);
  cache.insert(kb, CheckResult::kUnknown);  // must be ignored
  ASSERT_TRUE(cache.lookup(ka, &out));
  EXPECT_EQ(out, CheckResult::kSat);
  EXPECT_FALSE(cache.lookup(kb, &out));
  EXPECT_EQ(cache.size(), 1u);
  // Re-inserting the same key (another worker losing the race) is a no-op.
  cache.insert(ka, CheckResult::kSat);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PathCondCache, CapStopsInsertionsNotLookups) {
  ir::Context ctx;
  PathCondCache cache(/*max_entries=*/16);
  std::vector<PathSig> keys;
  for (int i = 0; i < 200; ++i) {
    ExprRef e = ctx.arena.cmp(CmpOp::kEq, ctx.field_var("f", 16),
                              ctx.arena.constant(i, 16));
    keys.push_back(PathCondCache::extend(PathSig{}, e));
    cache.insert(keys.back(), CheckResult::kUnsat);
  }
  // Sharded cap: the table stays near max_entries, never unbounded, and
  // entries recorded before the cap filled still hit.
  EXPECT_LE(cache.size(), 16u + 16u);
  EXPECT_GT(cache.size(), 0u);
  EXPECT_LT(cache.size(), 200u);
  CheckResult out = CheckResult::kSat;
  ASSERT_TRUE(cache.lookup(keys.front(), &out));
  EXPECT_EQ(out, CheckResult::kUnsat);
}

// ----------------------------------------------------- stats_minus rebase

TEST(SolverStatsRebase, WrappingMinusUnWrapsUnderLaterAccumulate) {
  // The resume path computes base = saved - at_replay_end where the fresh
  // solver may have spent MORE pushes replaying than the snapshot recorded
  // (field-wise wrap-around), then folds base += cumulative later. The sum
  // must land on the uninterrupted-run totals.
  SolverStats saved;
  saved.checks = 5;
  saved.fast_path_hits = 2;
  saved.sat_calls = 3;
  saved.fast_path_skipped = 1;
  saved.pushes = 3;
  saved.pops = 1;
  SolverStats at_replay_end;
  at_replay_end.pushes = 10;  // replay spent more pushes than were saved
  at_replay_end.pops = 4;
  SolverStats base = stats_minus(saved, at_replay_end);
  // Intermediate value wraps; it is never reported directly.
  EXPECT_EQ(base.pushes, uint64_t{3} - uint64_t{10});
  SolverStats cumulative = at_replay_end;  // solver keeps counting from here
  cumulative.checks += 7;
  cumulative.sat_calls += 4;
  cumulative.fast_path_skipped += 2;
  cumulative.pushes += 6;
  cumulative.pops += 5;
  SolverStats folded = base;
  folded += cumulative;
  EXPECT_EQ(folded.checks, 12u);
  EXPECT_EQ(folded.fast_path_hits, 2u);
  EXPECT_EQ(folded.sat_calls, 7u);
  EXPECT_EQ(folded.fast_path_skipped, 3u);
  EXPECT_EQ(folded.pushes, 9u);
  EXPECT_EQ(folded.pops, 6u);
}

}  // namespace
}  // namespace meissa::smt
