// Tests for the static-analysis subsystem: atom decomposition, abstract
// value ranges, the forward dataflow solver (including the validity-combo
// refinement), path environments, engine-facing facts, and the lint
// detectors over the seeded-bug corpus.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "analysis/dataflow.hpp"
#include "analysis/env.hpp"
#include "analysis/lint.hpp"
#include "apps/apps.hpp"
#include "cfg/build.hpp"

namespace meissa::analysis {
namespace {

Atom cmp_atom(ir::FieldId f, int width, ir::CmpOp op, uint64_t value) {
  Atom a;
  a.field = f;
  a.width = width;
  a.op = op;
  a.mask = width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  a.value = value;
  return a;
}

TEST(ValueRange, ConstantRoundTrip) {
  ValueRange r = ValueRange::constant(5, 8);
  uint64_t v = 0;
  EXPECT_TRUE(r.is_constant(v));
  EXPECT_EQ(v, 5u);
  EXPECT_FALSE(r.is_bottom());
  EXPECT_FALSE(r.is_top());
}

TEST(ValueRange, JoinWidensToInterval) {
  // Constants far enough apart that the small exclusion list cannot keep
  // the join exact: the result is the interval [3, 200].
  ValueRange r = ValueRange::constant(3, 8);
  EXPECT_TRUE(r.join(ValueRange::constant(200, 8)));
  uint64_t v = 0;
  EXPECT_FALSE(r.is_constant(v));
  ir::FieldId f = 0;
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kLt, 201)), Ternary::kTrue);
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kLt, 3)), Ternary::kFalse);
  // 67 is inside the hull and agrees with every bit 3 and 200 share, so
  // the join cannot rule it out.
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kEq, 67)), Ternary::kUnknown);
}

TEST(ValueRange, NearbyJoinStaysExactViaExclusions) {
  // A join of nearby constants records the interior gap in the exclusion
  // list, so equality against a gap value is refuted, not unknown.
  ValueRange r = ValueRange::constant(3, 8);
  EXPECT_TRUE(r.join(ValueRange::constant(9, 8)));
  ir::FieldId f = 0;
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kEq, 5)), Ternary::kFalse);
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kEq, 9)), Ternary::kUnknown);
}

TEST(ValueRange, SmallWidthIsExact) {
  // Width <= 6 uses an exact value bitmap: the join of {1} and {9} does
  // not admit 5 the way an interval would.
  ValueRange r = ValueRange::constant(1, 4);
  EXPECT_TRUE(r.join(ValueRange::constant(9, 4)));
  ir::FieldId f = 0;
  EXPECT_EQ(r.eval(cmp_atom(f, 4, ir::CmpOp::kEq, 5)), Ternary::kFalse);
  EXPECT_EQ(r.eval(cmp_atom(f, 4, ir::CmpOp::kEq, 9)), Ternary::kUnknown);
}

TEST(ValueRange, RefineToBottom) {
  ValueRange r = ValueRange::constant(5, 8);
  ir::FieldId f = 0;
  r.refine(cmp_atom(f, 8, ir::CmpOp::kEq, 6));
  EXPECT_TRUE(r.is_bottom());
}

// ---- width-boundary arithmetic: the primitives the summary validator's
// guard-implication checks lean on must be exact at the edges of the
// representable range.

TEST(ValueRange, WrapAroundAddTruncatesIntoRange) {
  // The shared truncating arithmetic wraps 0xff + 1 to 0 at width 8; the
  // range built from the wrapped constant must be the wrapped value, not
  // the 9-bit sum.
  const uint64_t wrapped = ir::apply_arith(ir::ArithOp::kAdd, 0xff, 1, 8);
  EXPECT_EQ(wrapped, 0u);
  ValueRange r = ValueRange::constant(0xff + 1, 8);  // constant() truncates
  uint64_t v = 1;
  ASSERT_TRUE(r.is_constant(v));
  EXPECT_EQ(v, 0u);
  ir::FieldId f = 0;
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kEq, 0)), Ternary::kTrue);
}

TEST(ValueRange, FullWidth64IsExactAtTheTop) {
  const uint64_t max = ~uint64_t{0};
  ValueRange r = ValueRange::constant(max, 64);
  uint64_t v = 0;
  ASSERT_TRUE(r.is_constant(v));
  EXPECT_EQ(v, max);
  ir::FieldId f = 0;
  // Nothing is greater than the all-ones value; Ge against it holds.
  EXPECT_EQ(r.eval(cmp_atom(f, 64, ir::CmpOp::kGt, max)), Ternary::kFalse);
  EXPECT_EQ(r.eval(cmp_atom(f, 64, ir::CmpOp::kGe, max)), Ternary::kTrue);
  // Joining {max-1} keeps the hull [max-1, max]: max-2 is provably out,
  // and both endpoints stay plausible.
  EXPECT_TRUE(r.join(ValueRange::constant(max - 1, 64)));
  EXPECT_EQ(r.eval(cmp_atom(f, 64, ir::CmpOp::kEq, max - 2)),
            Ternary::kFalse);
  EXPECT_EQ(r.eval(cmp_atom(f, 64, ir::CmpOp::kGe, max - 1)),
            Ternary::kTrue);
}

TEST(ValueRange, FullWidthMaskIsPlainCompare) {
  // A ternary atom whose mask covers the whole width is an exact compare:
  // refining with it pins the value; a conflicting full-mask refine
  // empties the range.
  ir::FieldId f = 0;
  Atom a = cmp_atom(f, 32, ir::CmpOp::kEq, 0xdeadbeef);
  EXPECT_TRUE(a.is_exact_mask());
  ValueRange r(32);
  EXPECT_TRUE(r.is_top());
  r.refine(a);
  uint64_t v = 0;
  ASSERT_TRUE(r.is_constant(v));
  EXPECT_EQ(v, 0xdeadbeefu);
  r.refine(cmp_atom(f, 32, ir::CmpOp::kEq, 0xdeadbef0));
  EXPECT_TRUE(r.is_bottom());
}

TEST(ValueRange, EmptyMeetAtWidthBoundaries) {
  ir::FieldId f = 0;
  // Wide representation: nothing is above the width-16 maximum.
  ValueRange wide(16);
  wide.refine(cmp_atom(f, 16, ir::CmpOp::kGt, 0xffff));
  EXPECT_TRUE(wide.is_bottom());
  // Nothing is below zero either.
  ValueRange low(16);
  low.refine(cmp_atom(f, 16, ir::CmpOp::kLt, 0));
  EXPECT_TRUE(low.is_bottom());
  // Small (bitmap) representation at the 6-bit boundary behaves the same.
  ValueRange small6(6);
  small6.refine(cmp_atom(f, 6, ir::CmpOp::kGt, 63));
  EXPECT_TRUE(small6.is_bottom());
  // eq then ne of the same value: the classic empty meet.
  ValueRange r = ValueRange::constant(63, 6);
  r.refine(cmp_atom(f, 6, ir::CmpOp::kNe, 63));
  EXPECT_TRUE(r.is_bottom());
}

TEST(ValueRange, JoinWithBottomIsIdentity) {
  ir::FieldId f = 0;
  ValueRange bottom(8);
  bottom.refine(cmp_atom(f, 8, ir::CmpOp::kLt, 0));  // empty
  ASSERT_TRUE(bottom.is_bottom());
  ValueRange r = ValueRange::constant(7, 8);
  EXPECT_FALSE(r.join(bottom));  // no widening from an empty set
  uint64_t v = 0;
  ASSERT_TRUE(r.is_constant(v));
  EXPECT_EQ(v, 7u);
  // And bottom.join(x) adopts x wholesale.
  EXPECT_TRUE(bottom.join(r));
  ASSERT_TRUE(bottom.is_constant(v));
  EXPECT_EQ(v, 7u);
}

TEST(ValueRange, BottomMakesNoClaim) {
  // eval over an empty set is kUnknown (unreachable state, no claim) —
  // callers prune on reachability, not on vacuous truth.
  ir::FieldId f = 0;
  ValueRange r = ValueRange::constant(5, 8);
  r.refine(cmp_atom(f, 8, ir::CmpOp::kEq, 6));
  ASSERT_TRUE(r.is_bottom());
  EXPECT_EQ(r.eval(cmp_atom(f, 8, ir::CmpOp::kEq, 5)), Ternary::kUnknown);
}

TEST(ValueRange, SmallWidthBoundaryIsSixBits) {
  // Width 6 is the last exact-bitmap width: the join of {1} and {62}
  // excludes interior values exactly. Width 7 falls back to the interval
  // hull, which cannot.
  ir::FieldId f = 0;
  ValueRange six = ValueRange::constant(1, 6);
  EXPECT_TRUE(six.join(ValueRange::constant(62, 6)));
  EXPECT_EQ(six.eval(cmp_atom(f, 6, ir::CmpOp::kEq, 30)), Ternary::kFalse);
  ValueRange seven = ValueRange::constant(1, 7);
  EXPECT_TRUE(seven.join(ValueRange::constant(126, 7)));
  EXPECT_EQ(seven.eval(cmp_atom(f, 7, ir::CmpOp::kEq, 30)),
            Ternary::kUnknown);
}

TEST(Decompose, ConjunctionOfSingleFieldCompares) {
  ir::Context ctx;
  ir::FieldId a = ctx.fields.intern("a", 8);
  ir::FieldId b = ctx.fields.intern("b", 8);
  ir::ExprRef e = ctx.arena.band(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a), ctx.arena.constant(3, 8)),
      ctx.arena.cmp(ir::CmpOp::kLt, ctx.var(b), ctx.arena.constant(7, 8)));
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(e, atoms, opaque);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_TRUE(opaque.empty());
  EXPECT_EQ(atoms[0].field, a);
  EXPECT_EQ(atoms[1].field, b);
}

TEST(Decompose, DeMorganOverNegatedDisjunction) {
  ir::Context ctx;
  ir::FieldId a = ctx.fields.intern("a", 8);
  ir::FieldId b = ctx.fields.intern("b", 8);
  ir::ExprRef e = ctx.arena.bnot(ctx.arena.bor(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a), ctx.arena.constant(3, 8)),
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(b), ctx.arena.constant(4, 8))));
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(e, atoms, opaque);
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_TRUE(opaque.empty());
  EXPECT_FALSE(atom_holds(3, atoms[0]));
  EXPECT_TRUE(atom_holds(5, atoms[0]));
}

TEST(Decompose, ValueSetPattern) {
  ir::Context ctx;
  ir::FieldId a = ctx.fields.intern("a", 8);
  auto eq = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a), ctx.arena.constant(v, 8));
  };
  ir::ExprRef e = ctx.arena.bor(ctx.arena.bor(eq(1), eq(2)), eq(3));
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(e, atoms, opaque);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(opaque.empty());
  EXPECT_EQ(atoms[0].set.size(), 3u);
}

TEST(Decompose, CrossFieldDisjunctionStaysOpaque) {
  ir::Context ctx;
  ir::FieldId a = ctx.fields.intern("a", 8);
  ir::FieldId b = ctx.fields.intern("b", 8);
  ir::ExprRef e = ctx.arena.bor(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a), ctx.arena.constant(3, 8)),
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(b), ctx.arena.constant(4, 8)));
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(e, atoms, opaque);
  EXPECT_TRUE(atoms.empty());
  ASSERT_EQ(opaque.size(), 1u);
}

TEST(Decompose, OutOfMaskEqualityIsAlwaysFalse) {
  // (f & 0x3a) == 0x2f can never hold (0x2f has bits outside the mask).
  // The canonicalized atom must be unsatisfiable and its negation a
  // tautology — getting this wrong once broke solver equivalence.
  ir::Context ctx;
  ir::FieldId f = ctx.fields.intern("f", 8);
  ir::ExprRef e = ctx.arena.cmp(
      ir::CmpOp::kEq,
      ctx.arena.arith(ir::ArithOp::kAnd, ctx.var(f),
                      ctx.arena.constant(0x3a, 8)),
      ctx.arena.constant(0x2f, 8));
  std::vector<Atom> atoms;
  std::vector<ir::ExprRef> opaque;
  decompose_conjunction(e, atoms, opaque);
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_TRUE(opaque.empty());
  for (uint64_t v : {0ull, 0x2aull, 0x2full, 0xffull}) {
    EXPECT_FALSE(atom_holds(v, atoms[0])) << v;
    EXPECT_TRUE(atom_holds(v, negate_atom(atoms[0]))) << v;
  }
}

// ---------------------------------------------------------------- dataflow

TEST(Dataflow, RefutesContradictoryBranchAndMarksDeadCode) {
  ir::Context ctx;
  ir::FieldId x = ctx.fields.intern("x", 8);
  auto eq = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(x), ctx.arena.constant(v, 8));
  };
  cfg::Cfg g;
  cfg::NodeId n0 = g.add(ir::Stmt::assume(eq(1)));
  g.set_entry(n0);
  cfg::NodeId n1 = g.add(ir::Stmt::assume(eq(2)));  // contradicts upstream
  g.link(n0, n1);
  cfg::NodeId n2 = g.add(ir::Stmt::nop());
  g.node(n2).exit = cfg::ExitKind::kEmit;
  g.link(n1, n2);

  Facts f = compute_facts(ctx, g, n0);
  EXPECT_EQ(f.refuted_count, 1u);
  EXPECT_TRUE(f.refuted[n1]);
  EXPECT_EQ(f.unreachable_count, 1u);
  EXPECT_TRUE(f.unreachable[n2]);
}

TEST(Dataflow, ValidityCombosKeepJoinLostCorrelations) {
  // Two validity bits set together on one arm of a diamond: after the
  // join each bit individually is 0-or-1, but an assume on one bit must
  // recover the other through the combo refinement (the parser-order
  // implication pattern: "inner valid => outer valid").
  ir::Context ctx;
  ir::FieldId va = ctx.fields.intern("hdr.a.$valid@p0", 1);
  ir::FieldId vb = ctx.fields.intern("hdr.b.$valid@p0", 1);
  auto set_to = [&](ir::FieldId f, uint64_t v) {
    return ir::Stmt::assign(f, ctx.arena.constant(v, 1));
  };
  cfg::Cfg g;
  cfg::NodeId entry = g.add(ir::Stmt::nop());
  g.set_entry(entry);
  cfg::NodeId r1 = g.add(set_to(va, 0));
  cfg::NodeId r2 = g.add(set_to(vb, 0));
  cfg::NodeId fork = g.add(ir::Stmt::nop());
  g.link(entry, r1);
  g.link(r1, r2);
  g.link(r2, fork);
  cfg::NodeId e1 = g.add(set_to(va, 1));
  cfg::NodeId e2 = g.add(set_to(vb, 1));
  cfg::NodeId join = g.add(ir::Stmt::nop());
  g.link(fork, e1);
  g.link(e1, e2);
  g.link(e2, join);
  g.link(fork, join);  // skip arm: both bits stay 0
  cfg::NodeId guard = g.add(ir::Stmt::assume(ctx.arena.cmp(
      ir::CmpOp::kEq, ctx.arena.field(vb, 1), ctx.arena.constant(1, 1))));
  cfg::NodeId read = g.add(ir::Stmt::nop());
  cfg::NodeId exit = g.add(ir::Stmt::nop());
  g.node(exit).exit = cfg::ExitKind::kEmit;
  g.link(join, guard);
  g.link(guard, read);
  g.link(read, exit);
  for (cfg::NodeId n = entry; n <= exit; ++n) g.node(n).instance = 0;
  cfg::InstanceInfo info;
  info.name = "p0";
  info.pipeline = "p0";
  info.entry = entry;
  info.exit = exit;
  info.validity = {{"a", va}, {"b", vb}};
  g.instances().push_back(info);

  ValueDomain dom(ctx, g);
  dom.set_relevant(ValueDomain::compute_relevant(ctx, g));
  ForwardResult<ValueDomain> r = run_forward(g, entry, dom);

  // Before the guard: each bit on its own is unknown.
  ASSERT_TRUE(r.in[guard].has_value());
  EXPECT_EQ(dom.validity_of(*r.in[guard], 0, va), Ternary::kUnknown);
  // After assuming b valid, a must be valid too — only the combo set
  // remembers the bits travelled together.
  ASSERT_TRUE(r.in[read].has_value());
  EXPECT_EQ(dom.validity_of(*r.in[read], 0, vb), Ternary::kTrue);
  EXPECT_EQ(dom.validity_of(*r.in[read], 0, va), Ternary::kTrue);
}

// --------------------------------------------------------------- path env

TEST(PathEnv, VerdictsAndRollback) {
  ir::Context ctx;
  ir::FieldId x = ctx.fields.intern("x", 8);
  auto eq = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(x), ctx.arena.constant(v, 8));
  };
  PathEnv env(ctx);
  const PathEnv::Mark m = env.mark();
  // Fresh single-field atom over an unconstrained field: certainly
  // satisfiable without a solver call.
  EXPECT_EQ(env.assume(eq(5)), Verdict::kSatisfiable);
  EXPECT_EQ(env.assume(eq(5)), Verdict::kImplied);
  EXPECT_EQ(env.assume(eq(6)), Verdict::kRefuted);
  env.rollback(m);
  EXPECT_EQ(env.assume(eq(6)), Verdict::kSatisfiable);
}

TEST(PathEnv, PreconditionsConstrainVerdicts) {
  ir::Context ctx;
  ir::FieldId x = ctx.fields.intern("x", 8);
  auto eq = [&](uint64_t v) {
    return ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(x), ctx.arena.constant(v, 8));
  };
  PathEnv env(ctx);
  env.add_precondition(eq(1));
  EXPECT_EQ(env.assume(eq(2)), Verdict::kRefuted);
  EXPECT_EQ(env.assume(eq(1)), Verdict::kImplied);
}

TEST(PathEnv, OpaqueConjunctsPoisonTheVerdict) {
  ir::Context ctx;
  ir::FieldId a = ctx.fields.intern("a", 8);
  ir::FieldId b = ctx.fields.intern("b", 8);
  // A cross-field disjunction cannot be classified without a solver.
  ir::ExprRef e = ctx.arena.bor(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a), ctx.arena.constant(3, 8)),
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(b), ctx.arena.constant(4, 8)));
  PathEnv env(ctx);
  EXPECT_EQ(env.assume(e), Verdict::kUnknown);
  // Fields mentioned by the opaque conjunct are poisoned: a later atom on
  // them cannot be certainly-satisfiable.
  EXPECT_EQ(env.assume(ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(a),
                                     ctx.arena.constant(7, 8))),
            Verdict::kUnknown);
}

// ------------------------------------------------------------------- lint

cfg::Cfg bug_cfg(ir::Context& ctx, int index, apps::BugScenario* out = nullptr) {
  apps::BugScenario bug = apps::make_bug(ctx, index);
  cfg::Cfg g = cfg::build_cfg(bug.bundle.dp, bug.bundle.rules, ctx);
  if (out != nullptr) *out = std::move(bug);
  return g;
}

bool has_code(const LintResult& r, const std::string& code) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

TEST(Lint, DetectsSeededStaticBugs) {
  // The statically-detectable rows of the Table 2 corpus, with the
  // diagnostic each must trigger.
  const std::pair<int, const char*> expectations[] = {
      {2, "contradictory-predicate"},     // shadowed ACL entry
      {3, "invalid-header-read"},         // parser case typo
      {4, "invalid-header-read"},         // swapped then/else arms
      {5, "header-never-emitted"},        // header dropped from emit order
      {6, "contradictory-predicate"},     // dead checksum-update guard
      {16, "uninitialized-metadata-read"},  // cross-pipeline read-before-write
  };
  for (const auto& [index, code] : expectations) {
    ir::Context ctx;
    cfg::Cfg g = bug_cfg(ctx, index);
    LintResult r = lint_cfg(ctx, g);
    EXPECT_FALSE(r.clean()) << "bug " << index;
    EXPECT_TRUE(has_code(r, code)) << "bug " << index << " missing " << code;
  }
}

TEST(Lint, CleanOnRouterAndGatewayDemos) {
  {
    ir::Context ctx;
    apps::AppBundle app = apps::make_router(ctx, 6);
    cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
    EXPECT_TRUE(lint_cfg(ctx, g).clean()) << "router";
  }
  for (int level = 1; level <= 4; ++level) {
    ir::Context ctx;
    apps::GwConfig cfg;
    cfg.level = level;
    cfg.elastic_ips = 4;
    apps::AppBundle app = apps::make_gateway(ctx, cfg);
    cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
    LintResult r = lint_cfg(ctx, g);
    EXPECT_TRUE(r.clean()) << "gw-" << level << "\n" << render_text(r);
  }
}

TEST(Lint, DiagnosticsAreDeterministic) {
  // Fresh contexts intern fields in genuinely different orders between
  // runs of different programs first; the rendered output must not care.
  auto render_both = [](std::string* text, std::string* json) {
    ir::Context ctx;
    cfg::Cfg g = bug_cfg(ctx, 3);
    LintResult r = lint_cfg(ctx, g);
    *text = render_text(r);
    *json = render_json(r);
  };
  std::string t1, j1, t2, j2;
  render_both(&t1, &j1);
  render_both(&t2, &j2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(j1, j2);
  EXPECT_NE(j1.find("\"diagnostics\""), std::string::npos);
}

// Minimal single-instance CFG: entry → instance entry → [vf := 1 when
// set_valid] → assume reading hdr.h.f → instance exit. The header is in
// the deparser emit order so header-never-emitted stays quiet either way.
LintResult lint_tiny_validity_cfg(bool set_valid) {
  ir::Context ctx;
  const ir::FieldId vf = ctx.fields.intern("hdr.h.$valid@p0", 1);
  const ir::FieldId f = ctx.fields.intern("hdr.h.f", 8);
  cfg::Cfg g;
  const cfg::NodeId entry = g.add(ir::Stmt::nop());
  const cfg::NodeId ientry = g.add(ir::Stmt::nop());
  cfg::NodeId prev = ientry;
  if (set_valid) {
    const cfg::NodeId setter =
        g.add(ir::Stmt::assign(vf, ctx.arena.constant(1, 1)));
    g.node(setter).instance = 0;
    g.link(prev, setter);
    prev = setter;
  }
  const cfg::NodeId read = g.add(ir::Stmt::assume(
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.var(f), ctx.arena.constant(1, 8))));
  const cfg::NodeId iexit = g.add(ir::Stmt::nop());
  g.node(ientry).instance = 0;
  g.node(read).instance = 0;
  g.node(iexit).instance = 0;
  g.node(iexit).exit = cfg::ExitKind::kEmit;
  g.node(iexit).emit_instance = 0;
  g.link(entry, ientry);
  g.link(prev, read);
  g.link(read, iexit);
  g.set_entry(entry);
  cfg::InstanceInfo info;
  info.name = "p0";
  info.pipeline = "p";
  info.entry = ientry;
  info.exit = iexit;
  info.emit_order = {"h"};
  info.validity = {{"h", vf}};
  g.instances().push_back(std::move(info));
  return lint_cfg(ctx, g);
}

TEST(Lint, ReadBeforeValidFiresWithoutAnySetter) {
  LintResult r = lint_tiny_validity_cfg(/*set_valid=*/false);
  EXPECT_TRUE(has_code(r, "read-before-valid")) << render_text(r);
  // The value domain agrees (validity is statically 0), so the plain
  // invalid-header-read error fires too; read-before-valid is the
  // structural claim on top of it.
  EXPECT_TRUE(has_code(r, "invalid-header-read")) << render_text(r);
}

TEST(Lint, ReadBeforeValidQuietWhenASetterReaches) {
  LintResult r = lint_tiny_validity_cfg(/*set_valid=*/true);
  EXPECT_FALSE(has_code(r, "read-before-valid")) << render_text(r);
  EXPECT_FALSE(has_code(r, "invalid-header-read")) << render_text(r);
}

TEST(Lint, DiagnosticsAreDedupedAndOrdered) {
  ir::Context ctx;
  cfg::Cfg g = bug_cfg(ctx, 3);
  LintResult r = lint_cfg(ctx, g);
  ASSERT_FALSE(r.diagnostics.empty());
  // Dedup key: a (detector, node, field) triple appears at most once even
  // when several CFG paths reach the same finding.
  std::set<std::tuple<std::string, cfg::NodeId, std::string>> keys;
  for (const Diagnostic& d : r.diagnostics) {
    EXPECT_TRUE(keys.emplace(d.code, d.node, d.field).second)
        << "duplicate diagnostic: " << d.code << " node " << d.node
        << " field '" << d.field << "'";
  }
  // Deterministic order: sorted by (node, code, field, message).
  for (size_t i = 1; i < r.diagnostics.size(); ++i) {
    const Diagnostic& a = r.diagnostics[i - 1];
    const Diagnostic& b = r.diagnostics[i];
    EXPECT_LE(std::tie(a.node, a.code, a.field, a.message),
              std::tie(b.node, b.code, b.field, b.message));
  }
  // The JSON rendering carries the dedup field.
  EXPECT_NE(render_json(r).find("\"field\""), std::string::npos);
}

// Minimal CFG with a dead store: entry → instance entry → meta.scratch :=
// 1 (never read, metadata so never emitted) → instance exit.
LintResult lint_dead_store_cfg(bool telemetry) {
  ir::Context ctx;
  const ir::FieldId f = ctx.fields.intern("meta.scratch", 8);
  cfg::Cfg g;
  const cfg::NodeId entry = g.add(ir::Stmt::nop());
  const cfg::NodeId ientry = g.add(ir::Stmt::nop());
  const cfg::NodeId wr = g.add(ir::Stmt::assign(f, ctx.arena.constant(1, 8)));
  const cfg::NodeId iexit = g.add(ir::Stmt::nop());
  g.node(ientry).instance = 0;
  g.node(wr).instance = 0;
  g.node(iexit).instance = 0;
  g.node(iexit).exit = cfg::ExitKind::kEmit;
  g.node(iexit).emit_instance = 0;
  g.link(entry, ientry);
  g.link(ientry, wr);
  g.link(wr, iexit);
  g.set_entry(entry);
  cfg::InstanceInfo info;
  info.name = "p0";
  info.pipeline = "p";
  info.entry = ientry;
  info.exit = iexit;
  g.instances().push_back(std::move(info));
  if (telemetry) g.telemetry().push_back("meta.scratch");
  return lint_cfg(ctx, g);
}

TEST(Lint, UnusedWriteFiresOnDeadStore) {
  LintResult r = lint_dead_store_cfg(/*telemetry=*/false);
  EXPECT_TRUE(has_code(r, "unused-write")) << render_text(r);
}

TEST(Lint, UnusedWriteQuietOnTelemetryAnnotation) {
  LintResult r = lint_dead_store_cfg(/*telemetry=*/true);
  EXPECT_FALSE(has_code(r, "unused-write")) << render_text(r);
}

TEST(Lint, SyntheticSkipArmsAreNotReported) {
  // gw-4's exhaustive topology guards make every skip-chain fall-through
  // statically dead; those are builder artifacts, not findings.
  ir::Context ctx;
  apps::GwConfig cfg;
  cfg.level = 4;
  cfg.elastic_ips = 4;
  apps::AppBundle app = apps::make_gateway(ctx, cfg);
  cfg::Cfg g = cfg::build_cfg(app.dp, app.rules, ctx);
  bool has_synthetic = false;
  for (cfg::NodeId id = 0; id < g.size(); ++id) {
    has_synthetic = has_synthetic || g.node(id).synthetic;
  }
  EXPECT_TRUE(has_synthetic);
  EXPECT_TRUE(lint_cfg(ctx, g).clean());
}

}  // namespace
}  // namespace meissa::analysis
