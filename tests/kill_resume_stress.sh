#!/usr/bin/env bash
# Kill/resume stress for the checkpointed generator.
#
# For each seed: SIGKILL a checkpointed gw-4 template generation at a
# randomized point (several rounds), then resume it to completion and
# require the templates to be byte-identical to an uninterrupted run.
# Injected per-shard stalls stretch the generation so the kill reliably
# lands mid-run; the final resume runs without injection, so the output
# comparison also covers "crash under faults, recover clean".
#
# usage: kill_resume_stress.sh <m4test-binary> [seed...]
set -u

M4TEST=${1:?usage: $0 <m4test-binary> [seed...]}
shift || true
SEEDS=("$@")
if [ ${#SEEDS[@]} -eq 0 ]; then SEEDS=(1 2 3); fi

APP=gw-4
KILL_ROUNDS=3

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

ref="$workdir/reference.txt"
if ! "$M4TEST" --app "$APP" --templates --threads 4 > "$ref"; then
  echo "FAIL: reference run did not complete" >&2
  exit 1
fi

fail=0
for seed in "${SEEDS[@]}"; do
  dir="$workdir/ckpt-$seed"
  rm -rf "$dir"
  saw_checkpoint=0

  for round in $(seq 1 "$KILL_ROUNDS"); do
    resume_flag=""
    if [ -e "$dir/checkpoint.bin" ] || [ -e "$dir/checkpoint.bin.prev" ]; then
      resume_flag="--resume"
      saw_checkpoint=1
    fi
    # Stalls fire once per shard attempt; with 32 shards this stretches
    # the ~0.25s run into a window the SIGKILL can reliably hit.
    "$M4TEST" --app "$APP" --templates --threads 4 \
      --checkpoint "$dir" $resume_flag --checkpoint-every 1 \
      --inject 'shard.*:stall:0:20:0' \
      > "$workdir/killed-$seed-$round.txt" 2>/dev/null &
    pid=$!

    # Deterministic pseudo-random kill point in [20, 420) ms.
    ms=$(( (seed * 7919 + round * 104729) % 400 + 20 ))
    sleep "0.$(printf '%03d' "$ms")"

    if kill -9 "$pid" 2>/dev/null; then
      wait "$pid" 2>/dev/null
      echo "seed $seed round $round: killed at ${ms}ms"
    else
      # The run finished before the kill landed — that round still
      # exercises the checkpoint-write path; the resume below must cope.
      wait "$pid" 2>/dev/null
      echo "seed $seed round $round: completed before kill (${ms}ms)"
    fi
  done

  if [ "$saw_checkpoint" -eq 0 ] && [ ! -e "$dir/checkpoint.bin" ] \
      && [ ! -e "$dir/checkpoint.bin.prev" ]; then
    echo "FAIL: seed $seed never produced a checkpoint file" >&2
    fail=1
    continue
  fi

  out="$workdir/resumed-$seed.txt"
  if ! "$M4TEST" --app "$APP" --templates --threads 4 \
      --checkpoint "$dir" --resume > "$out"; then
    echo "FAIL: seed $seed resume run did not complete" >&2
    fail=1
    continue
  fi
  if ! cmp -s "$ref" "$out"; then
    echo "FAIL: seed $seed resumed templates differ from uninterrupted run" >&2
    diff "$ref" "$out" | head -20 >&2
    fail=1
  else
    echo "seed $seed: resumed templates byte-identical OK"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "kill/resume stress: FAILED" >&2
  exit 1
fi
echo "kill/resume stress: all ${#SEEDS[@]} seed(s) byte-identical"
