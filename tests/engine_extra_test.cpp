// Additional engine & summary tests: the paper-faithful
// check-every-predicate mode, stop-region restriction, value-set
// pre-conditions, and time budgets.
#include <gtest/gtest.h>

#include "summary/summary.hpp"
#include "sym/template.hpp"
#include "testlib.hpp"

namespace meissa::sym {
namespace {

TEST(FaithfulMode, SameResultsMoreChecks) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);

  Engine fast(ctx, g, {});
  EngineOptions faithful_opts;
  faithful_opts.check_every_predicate = true;
  Engine faithful(ctx, g, faithful_opts);
  std::vector<cfg::Path> p1, p2;
  fast.run([&](const PathResult& r) { p1.push_back(r.path); });
  faithful.run([&](const PathResult& r) { p2.push_back(r.path); });
  EXPECT_EQ(p1, p2);
  // Folding decides some predicates without the solver; the faithful mode
  // pays a solver call for each of them (Fig. 6's Sym.Predicate rule).
  EXPECT_GT(faithful.stats().solver.checks, fast.stats().solver.checks);
  EXPECT_GT(fast.stats().folded_checks, 0u);
  EXPECT_EQ(faithful.stats().folded_checks, 0u);
}

TEST(FaithfulMode, SummaryStillPreservesPaths) {
  util::Rng rng(4242);
  for (int round = 0; round < 5; ++round) {
    ir::Context ctx;
    cfg::Cfg g = testlib::random_pipeline_cfg(ctx, rng, 2, 2);
    summary::SummaryOptions sopts;
    sopts.check_every_predicate = true;
    summary::SummaryResult sr = summary::summarize(ctx, g, sopts);
    EngineOptions eopts;
    eopts.check_every_predicate = true;
    Engine before(ctx, g, eopts);
    Engine after(ctx, sr.graph, eopts);
    size_t n1 = 0, n2 = 0;
    before.run([&](const PathResult&) { ++n1; });
    after.run([&](const PathResult&) { ++n2; });
    EXPECT_EQ(n1, n2) << "round " << round;
  }
}

TEST(StopRegion, ExplorationIsRestrictedToReachingPaths) {
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
  cfg::NodeId egress_entry = g.instances()[1].entry;

  EngineOptions opts;
  opts.stop = egress_entry;
  Engine eng(ctx, g, opts);
  size_t prefixes = 0;
  eng.run([&](const PathResult& r) {
    ++prefixes;
    EXPECT_EQ(r.path.back(), egress_entry);
  });
  EXPECT_GT(prefixes, 0u);
  // The whole-graph engine visits strictly more nodes than the region-
  // restricted one.
  Engine full(ctx, g, {});
  full.run([](const PathResult&) {});
  EXPECT_LT(eng.stats().nodes_visited, full.stats().nodes_visited);
}

TEST(ValueSets, PreconditionCarriesMergedConstants) {
  // Fig. 7-style: egressPort takes one of n constants across prefix
  // paths; the pre-condition at a downstream pipe records the merged set
  // for fields whose per-path values disagree but are all constants.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig8_plane(ctx);
  p4::RuleSet rules = testlib::fig8_rules();
  // Route UDP to the egress pipe as well, on a different port.
  p4::TableEntry udp;
  udp.table = "l4_route";
  udp.matches = {p4::KeyMatch::exact(17)};
  udp.action = "set_port";
  udp.args = {2};
  rules.add(udp);
  dp.topology.edges.push_back(
      {"sw0.ig", "sw0.eg",
       ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var(p4::kEgressSpec, 9),
                     ctx.arena.constant(2, 9))});
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
  auto pc = summary::compute_precondition_by_enumeration(
      ctx, g, g.instances()[1].entry, 10000);
  ASSERT_TRUE(pc.has_value());
  ir::FieldId eg = ctx.fields.require(std::string(p4::kEgressSpec));
  ASSERT_TRUE(pc->tops.count(eg));  // 1 on TCP paths, 2 on UDP paths
  auto it = pc->value_sets.find(eg);
  ASSERT_NE(it, pc->value_sets.end());
  std::vector<uint64_t> vs = it->second;
  std::sort(vs.begin(), vs.end());
  EXPECT_EQ(vs, (std::vector<uint64_t>{1, 2}));
}

TEST(TimeBudget, AbortsAndMarksTimeout) {
  ir::Context ctx;
  util::Rng rng(9);
  cfg::Cfg g = testlib::random_pipeline_cfg(ctx, rng, 4, 3);
  EngineOptions opts;
  opts.time_budget_seconds = 1e-9;
  Engine eng(ctx, g, opts);
  eng.run([](const PathResult&) {});
  EXPECT_TRUE(eng.stats().timed_out);
}

}  // namespace
}  // namespace meissa::sym
