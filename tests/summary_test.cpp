// Tests for code summary (Algorithm 2): path preservation (the paper's
// §3.4 theorem), pre-condition computation, and path-count reduction.
#include <gtest/gtest.h>

#include <algorithm>

#include "summary/summary.hpp"
#include "sym/template.hpp"
#include "testlib.hpp"

namespace meissa::summary {
namespace {

using sym::Engine;
using sym::PathResult;

// Runs the engine on `g` and returns all results.
std::vector<PathResult> explore(ir::Context& ctx, const cfg::Cfg& g) {
  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  return rs;
}

// Behavioural signature of an input on a CFG: terminal kind plus the final
// values of the given observable fields.
std::string signature(const cfg::Cfg& g, const ir::Context& ctx,
                      ir::ConcreteState in,
                      const std::vector<ir::FieldId>& observed) {
  auto out = testlib::concrete_run(g, std::move(in), ctx);
  if (!out) return "<stuck>";
  std::string sig = out->exit == cfg::ExitKind::kEmit ? "emit" : "drop";
  for (ir::FieldId f : observed) {
    auto it = out->state.find(f);
    sig += "," + (it == out->state.end() ? std::string("?")
                                         : std::to_string(it->second));
  }
  return sig;
}

class Fig8Summary : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig8_plane(ctx);
    rules = testlib::fig8_rules();
    g = cfg::build_cfg(dp, rules, ctx);
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  cfg::Cfg g;
};

TEST_F(Fig8Summary, PreconditionFiltersUdpBranch) {
  SummaryResult sr = summarize(ctx, g);
  ASSERT_EQ(sr.per_pipeline.size(), 2u);
  // Ingress: reject, tcp-hit, udp-miss, other-miss.
  EXPECT_EQ(sr.per_pipeline[0].paths_after, 4u);
  // Egress under "proto == TCP": only the two tcp-mark paths (Fig. 8).
  EXPECT_EQ(sr.per_pipeline[1].paths_after, 2u);
  EXPECT_GT(sr.per_pipeline[1].paths_before.value(), 2.0);
}

TEST_F(Fig8Summary, SummaryPreservesValidPathCount) {
  auto before = explore(ctx, g);
  SummaryResult sr = summarize(ctx, g);
  auto after = explore(ctx, sr.graph);
  EXPECT_EQ(before.size(), after.size());
}

TEST_F(Fig8Summary, SummaryPreservesBehaviourOnModels) {
  SummaryResult sr = summarize(ctx, g);
  std::vector<ir::FieldId> observed = {
      ctx.fields.require("meta.l4_kind"),
      ctx.fields.require(std::string(p4::kEgressSpec)),
      ctx.fields.require("hdr.eth.dst"),
  };
  // For every path of the summarized graph, its model must behave
  // identically on the original graph — and vice versa.
  for (const cfg::Cfg* from : {&g, &sr.graph}) {
    Engine eng(ctx, *from);
    std::vector<PathResult> rs;
    eng.run([&](const PathResult& r) { rs.push_back(r); });
    for (const auto& r : rs) {
      auto model = eng.solve_for_model(r);
      ASSERT_TRUE(model.has_value());
      ir::ConcreteState s;
      for (auto& [f, v] : *model) s[f] = v;
      for (ir::FieldId f = 0; f < ctx.fields.size(); ++f) s.try_emplace(f, 0);
      EXPECT_EQ(signature(g, ctx, s, observed),
                signature(sr.graph, ctx, s, observed));
    }
  }
}

TEST_F(Fig8Summary, SummarizedGraphHasFewerPossiblePaths) {
  SummaryResult sr = summarize(ctx, g);
  EXPECT_LT(sr.graph.count_paths().value(), g.count_paths().value());
}

TEST_F(Fig8Summary, SummaryReducesSmtCallsInFinalGeneration) {
  Engine plain(ctx, g);
  plain.run([](const PathResult&) {});
  SummaryResult sr = summarize(ctx, g);
  Engine summarized(ctx, sr.graph);
  summarized.run([](const PathResult&) {});
  EXPECT_LE(summarized.stats().nodes_visited, plain.stats().nodes_visited);
}

TEST_F(Fig8Summary, FilteringOffStillPreservesPaths) {
  SummaryOptions opts;
  opts.precondition_filtering = false;
  SummaryResult sr = summarize(ctx, g, opts);
  // Without inter-pipeline filtering the egress keeps its UDP branches...
  EXPECT_GT(sr.per_pipeline[1].paths_after, 2u);
  // ...but the final generation prunes them: same valid paths overall.
  EXPECT_EQ(explore(ctx, sr.graph).size(), explore(ctx, g).size());
}

TEST_F(Fig8Summary, EnumeratedPreconditionFindsProtoAndEgSpec) {
  // The primary (Algorithm 2) enumeration must discover proto == 6 and the
  // eg_spec == 1 binding at the egress entry (Fig. 8).
  cfg::NodeId target = g.instances()[1].entry;
  auto pc = compute_precondition_by_enumeration(ctx, g, target, 10000);
  ASSERT_TRUE(pc.has_value());
  ir::ExprRef proto_is_tcp =
      ctx.arena.cmp(ir::CmpOp::kEq, ctx.field_var("hdr.ipv4.proto", 8),
                    ctx.arena.constant(6, 8));
  EXPECT_NE(std::find(pc->conds.begin(), pc->conds.end(), proto_is_tcp),
            pc->conds.end());
  ir::FieldId eg = ctx.fields.require(std::string(p4::kEgressSpec));
  ASSERT_TRUE(pc->values.count(eg));
  EXPECT_TRUE(pc->values.at(eg)->is_const());
  EXPECT_EQ(pc->values.at(eg)->value, 1u);
}

TEST_F(Fig8Summary, DataflowPreconditionIsWeakerButSound) {
  // The dataflow fallback may only produce conditions the enumeration
  // also derives (sound under-approximation of the intersection).
  cfg::NodeId target = g.instances()[1].entry;
  PreCondition flow = compute_precondition(ctx, g, target);
  auto enumd = compute_precondition_by_enumeration(ctx, g, target, 10000);
  ASSERT_TRUE(enumd.has_value());
  for (ir::ExprRef c : flow.conds) {
    EXPECT_NE(std::find(enumd->conds.begin(), enumd->conds.end(), c),
              enumd->conds.end())
        << "dataflow produced a condition enumeration did not: "
        << ir::to_string(c, ctx.fields);
  }
  for (auto& [f, v] : flow.values) {
    auto it = enumd->values.find(f);
    ASSERT_NE(it, enumd->values.end());
    EXPECT_EQ(it->second, v);
  }
}

TEST_F(Fig8Summary, EnumerationLimitFallsBackGracefully) {
  cfg::NodeId target = g.instances()[1].entry;
  EXPECT_FALSE(
      compute_precondition_by_enumeration(ctx, g, target, 0).has_value());
  SummaryOptions opts;
  opts.max_precondition_paths = 0;  // force the dataflow fallback everywhere
  SummaryResult sr = summarize(ctx, g, opts);
  Engine eng(ctx, sr.graph);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  EXPECT_EQ(rs.size(), explore(ctx, g).size());
}

TEST(SummaryAtomicity, SwapEncodingUsesEntrySnapshots) {
  // The §3.3 atomicity example: a pipeline that sets srcPort <- 10000 and
  // dstPort <- srcPort + 1 *simultaneously* (sequentially it reads the old
  // srcPort). Summarization must encode via @srcPort.
  ir::Context ctx;
  cfg::Cfg g;
  ir::FieldId sp = ctx.fields.intern("srcPort", 16);
  ir::FieldId dp = ctx.fields.intern("dstPort", 16);
  cfg::NodeId entry = g.add(ir::Stmt::nop());
  g.set_entry(entry);
  cfg::NodeId pentry = g.add(ir::Stmt::nop());
  g.link(entry, pentry);
  // dstPort <- srcPort + 1 BEFORE srcPort <- 10000.
  cfg::NodeId a1 = g.add(ir::Stmt::assign(
      dp, ctx.arena.arith(ir::ArithOp::kAdd, ctx.var(sp),
                          ctx.arena.constant(1, 16))));
  g.link(pentry, a1);
  cfg::NodeId a2 = g.add(ir::Stmt::assign(sp, ctx.arena.constant(10000, 16)));
  g.link(a1, a2);
  cfg::NodeId pexit = g.add(ir::Stmt::nop());
  g.link(a2, pexit);
  cfg::InstanceInfo info;
  info.name = "p0";
  info.pipeline = "p0";
  info.entry = pentry;
  info.exit = pexit;
  g.instances().push_back(info);
  cfg::NodeId leaf = g.add(ir::Stmt::nop());
  g.node(leaf).exit = cfg::ExitKind::kEmit;
  g.link(pexit, leaf);

  SummaryResult sr = summarize(ctx, g);
  EXPECT_EQ(sr.per_pipeline[0].paths_after, 1u);
  ir::ConcreteState in{{sp, 777}, {dp, 1}};
  auto orig = testlib::concrete_run(g, in, ctx);
  auto summ = testlib::concrete_run(sr.graph, in, ctx);
  ASSERT_TRUE(orig && summ);
  EXPECT_EQ(orig->state.at(dp), 778u);
  EXPECT_EQ(summ->state.at(dp), 778u);
  EXPECT_EQ(summ->state.at(sp), 10000u);
}

// ------------------------- randomized property test ----------------------

// Summary must preserve (1) the number of valid paths and (2) concrete
// behaviour for models of every path, on random multi-pipeline CFGs.
class SummaryProperty : public ::testing::TestWithParam<int> {};

TEST_P(SummaryProperty, PreservesValidPathsOnRandomCfgs) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 6; ++round) {
    ir::Context ctx;
    int pipes = static_cast<int>(rng.range(1, 3));
    int diamonds = static_cast<int>(rng.range(1, 3));
    cfg::Cfg g = testlib::random_pipeline_cfg(ctx, rng, pipes, diamonds);
    auto before = explore(ctx, g);
    SummaryResult sr = summarize(ctx, g);
    auto after = explore(ctx, sr.graph);
    ASSERT_EQ(before.size(), after.size())
        << "seed " << GetParam() << " round " << round;

    std::vector<ir::FieldId> observed = testlib::random_cfg_fields(ctx);
    Engine eng(ctx, sr.graph);
    std::vector<PathResult> rs;
    eng.run([&](const PathResult& r) { rs.push_back(r); });
    for (const auto& r : rs) {
      auto model = eng.solve_for_model(r);
      ASSERT_TRUE(model.has_value());
      ir::ConcreteState s;
      for (auto& [f, v] : *model) s[f] = v;
      for (ir::FieldId f : observed) s.try_emplace(f, 0);
      ASSERT_EQ(signature(g, ctx, s, observed),
                signature(sr.graph, ctx, s, observed))
          << "seed " << GetParam() << " round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SummaryProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace meissa::summary
