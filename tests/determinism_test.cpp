// Determinism of the parallel generation architecture: Generator::generate
// must yield identical template sets for every thread count, and full test
// runs must produce identical reports. Each run uses its own Context, so
// field/expression interning order genuinely differs between runs — the
// signatures below are name-based and must not.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <sstream>
#include <thread>

#include "apps/apps.hpp"
#include "driver/incremental.hpp"
#include "driver/tester.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/toolchain.hpp"
#include "sym/template.hpp"
#include "testlib.hpp"

namespace meissa {
namespace {

using AppMaker = std::function<apps::AppBundle(ir::Context&)>;

apps::AppBundle router_app(ir::Context& ctx) {
  return apps::make_router(ctx, 6);
}

apps::AppBundle nat_gateway_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 2;  // ingress + egress NAT gateway (gw-2)
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

apps::AppBundle multi_switch_app(ir::Context& ctx) {
  apps::GwConfig cfg;
  cfg.level = 4;  // 8 pipelines across 2 switches (gw-4, Fig. 1)
  cfg.elastic_ips = 2;
  return apps::make_gateway(ctx, cfg);
}

// One name-based line per template: structural identity (node-id path —
// summarized node ids are thread-count-independent because graph splices
// are sequential) plus the rendered path condition (field names).
std::vector<std::string> generate_signature(const AppMaker& make,
                                            driver::GenOptions opts) {
  ir::Context ctx;
  apps::AppBundle app = make(ctx);
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  std::vector<std::string> sig;
  sig.reserve(templates.size());
  for (const sym::TestCaseTemplate& t : templates) {
    std::ostringstream os;
    os << sym::describe(t, ctx, gen.graph()) << "\n  path:";
    for (cfg::NodeId n : t.path) os << " " << n;
    sig.push_back(os.str());
  }
  return sig;
}

void expect_identical_across_threads(const AppMaker& make,
                                     driver::GenOptions opts) {
  opts.threads = 1;
  const std::vector<std::string> base = generate_signature(make, opts);
  EXPECT_FALSE(base.empty());
  for (int threads : {2, 8}) {
    opts.threads = threads;
    const std::vector<std::string> got = generate_signature(make, opts);
    ASSERT_EQ(got.size(), base.size()) << threads << " threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i], base[i]) << "template " << i << ", " << threads
                                 << " threads";
    }
  }
}

TEST(Determinism, RouterTemplatesIdenticalAcrossThreadCounts) {
  expect_identical_across_threads(router_app, {});
}

TEST(Determinism, NatGatewayTemplatesIdenticalAcrossThreadCounts) {
  expect_identical_across_threads(nat_gateway_app, {});
}

TEST(Determinism, MultiSwitchTemplatesIdenticalAcrossThreadCounts) {
  expect_identical_across_threads(multi_switch_app, {});
}

TEST(Determinism, StopModeMaxTemplatesIdenticalAcrossThreadCounts) {
  // max_templates exercises the deterministic truncation of the shard
  // merge (the first K results in sequential DFS order, whatever ran).
  driver::GenOptions opts;
  opts.max_templates = 3;
  expect_identical_across_threads(nat_gateway_app, opts);
}

TEST(Determinism, GenerousTimeBudgetIdenticalAcrossThreadCounts) {
  // A budget that never triggers must not perturb the result set.
  driver::GenOptions opts;
  opts.time_budget_seconds = 300.0;
  expect_identical_across_threads(router_app, opts);
}

TEST(Determinism, ObservabilityTransparent) {
  // The observability acceptance bar: turning metrics + tracing on may not
  // perturb generation — the emitted templates must be byte-identical to a
  // run with everything off (the default).
  struct ObsOnGuard {  // exception-safe: never leaks "enabled" to other tests
    ObsOnGuard() {
      obs::MetricsRegistry::set_enabled(true);
      obs::trace_start();
    }
    ~ObsOnGuard() {
      obs::trace_stop();
      obs::MetricsRegistry::set_enabled(false);
      obs::metrics().reset_values();
    }
  };
  const std::vector<std::string> base = generate_signature(nat_gateway_app, {});
  std::vector<std::string> instrumented;
  {
    ObsOnGuard on;
    instrumented = generate_signature(nat_gateway_app, {});
    // The instruments did observe the run (this is not a vacuous pass).
    EXPECT_GT(obs::metrics().counter("gen.templates").value(), 0u);
    EXPECT_FALSE(obs::trace_events().empty());
  }
  EXPECT_FALSE(base.empty());
  ASSERT_EQ(instrumented.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(instrumented[i], base[i]) << "template " << i;
  }
}

TEST(Determinism, MetricsOnIdenticalAcrossThreadCounts) {
  // With the registry live, the multi-threaded DFS still merges to the same
  // template set — the atomics add no ordering dependence.
  obs::MetricsRegistry::set_enabled(true);
  expect_identical_across_threads(nat_gateway_app, {});
  obs::MetricsRegistry::set_enabled(false);
  obs::metrics().reset_values();
}

TEST(Determinism, GenerousSmtBudgetTemplatesUnchanged) {
  // A per-check solver budget roomy enough that no check exhausts it must
  // leave the emitted templates byte-identical to the default (unlimited)
  // configuration — the budget machinery may not perturb the search.
  driver::GenOptions budgeted;
  budgeted.smt_budget.max_conflicts = 1u << 30;
  budgeted.smt_budget.max_propagations = uint64_t{1} << 40;
  const std::vector<std::string> base =
      generate_signature(nat_gateway_app, {});
  const std::vector<std::string> got =
      generate_signature(nat_gateway_app, budgeted);
  EXPECT_FALSE(base.empty());
  ASSERT_EQ(got.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(got[i], base[i]) << "template " << i;
  }
}

TEST(Determinism, GenerousSmtBudgetIdenticalAcrossThreadCounts) {
  driver::GenOptions opts;
  opts.smt_budget.max_conflicts = 1u << 30;
  expect_identical_across_threads(nat_gateway_app, opts);
}

TEST(Determinism, DegradedGenerationIdenticalAcrossThreadCounts) {
  // Even a budget tiny enough to force kUnknown degradation must degrade
  // *deterministically*: the shards are fixed, each worker's solver is
  // deterministic, so templates and coverage split match at every thread
  // count. (Deliberately conflict/propagation-based — a wall-clock budget
  // could not promise this.)
  driver::GenOptions opts;
  opts.smt_budget.max_conflicts = 1;
  opts.smt_budget.max_propagations = 1;
  expect_identical_across_threads(multi_switch_app, opts);
}

TEST(Determinism, NoSummaryDfsIdenticalAcrossThreadCounts) {
  driver::GenOptions opts;
  opts.code_summary = false;
  expect_identical_across_threads(nat_gateway_app, opts);
}

TEST(Determinism, EngineParallelMatchesSequentialRun) {
  // The sharded exploration must emit exactly the sequential DFS result
  // stream: same paths, same condition stacks, same order.
  ir::Context ctx;
  p4::DataPlane dp = testlib::make_fig7_plane(ctx);
  p4::RuleSet rules = testlib::fig7_rules(3);
  cfg::Cfg g = cfg::build_cfg(dp, rules, ctx);
  auto render = [&](const std::vector<sym::PathResult>& rs) {
    std::vector<std::string> out;
    for (const sym::PathResult& r : rs) {
      std::ostringstream os;
      for (cfg::NodeId n : r.path) os << n << " ";
      os << "| " << ir::to_string(ctx.arena.all_of(r.conds), ctx.fields);
      out.push_back(os.str());
    }
    return out;
  };
  std::vector<sym::PathResult> seq;
  sym::Engine eng_seq(ctx, g);
  eng_seq.run([&](const sym::PathResult& r) { seq.push_back(r); });
  for (int threads : {1, 2, 8}) {
    std::vector<sym::PathResult> par;
    sym::Engine eng(ctx, g);
    eng.run_parallel([&](const sym::PathResult& r) { par.push_back(r); },
                     threads);
    EXPECT_EQ(render(par), render(seq)) << threads << " threads";
    EXPECT_EQ(eng.stats().valid_paths, seq.size());
  }
}

TEST(Determinism, ReportsIdenticalAcrossThreadCounts) {
  // Full end-to-end runs (generate → inject → check) on the NAT gateway:
  // everything the report counts must match between thread counts.
  auto run = [&](int threads) {
    ir::Context ctx;
    apps::AppBundle app = nat_gateway_app(ctx);
    sim::DeviceProgram compiled = sim::compile(app.dp, app.rules, ctx);
    sim::Device device(compiled, ctx);
    driver::TestRunOptions opts;
    opts.gen.threads = threads;
    driver::Meissa meissa(ctx, app.dp, app.rules, opts);
    return meissa.test(device, app.intents);
  };
  const driver::TestReport base = run(1);
  EXPECT_GT(base.templates, 0u);
  for (int threads : {2, 8}) {
    const driver::TestReport got = run(threads);
    EXPECT_EQ(got.templates, base.templates) << threads << " threads";
    EXPECT_EQ(got.cases, base.cases) << threads << " threads";
    EXPECT_EQ(got.passed, base.passed) << threads << " threads";
    EXPECT_EQ(got.failed, base.failed) << threads << " threads";
    EXPECT_EQ(got.removed_by_hash, base.removed_by_hash)
        << threads << " threads";
    EXPECT_EQ(got.failures.size(), base.failures.size())
        << threads << " threads";
  }
}

// --------------------------------------------- checkpoint/resume (crash)

std::string resume_dir(const std::string& name) {
  std::filesystem::path p =
      std::filesystem::temp_directory_path() / ("m4resume_" + name);
  std::filesystem::remove_all(p);
  return p.string();
}

TEST(Resume, ByteIdentical) {
  // The crash-safety acceptance bar: a checkpointed gw-4 generation killed
  // (cooperatively cancelled — the in-process stand-in for SIGKILL, same
  // on-disk state) at several points, then resumed, must emit templates
  // byte-identical to an uninterrupted run — even under a different thread
  // count, since the content key deliberately excludes it.
  driver::GenOptions base;
  base.threads = 4;
  const std::vector<std::string> expect =
      generate_signature(multi_switch_app, base);
  EXPECT_FALSE(expect.empty());

  for (int delay_ms : {0, 5, 25}) {
    const std::string dir = resume_dir(std::to_string(delay_ms));
    {
      util::CancelToken token;
      std::thread killer([&token, delay_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        token.cancel();
      });
      driver::GenOptions opts = base;
      opts.checkpoint_dir = dir;
      opts.checkpoint_every = 1;
      opts.cancel = &token;
      ir::Context ctx;
      apps::AppBundle app = multi_switch_app(ctx);
      driver::Generator gen(ctx, app.dp, app.rules, opts);
      (void)gen.generate();  // partial (or complete, if the cut came late)
      killer.join();
    }
    driver::GenOptions opts = base;
    opts.threads = 2;  // resume under a different thread count
    opts.checkpoint_dir = dir;
    opts.resume = true;
    const std::vector<std::string> got =
        generate_signature(multi_switch_app, opts);
    ASSERT_EQ(got.size(), expect.size()) << "killed at " << delay_ms << "ms";
    for (size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(got[i], expect[i])
          << "template " << i << ", killed at " << delay_ms << "ms";
    }
  }
}

TEST(Resume, FullCheckpointSkipsExploreAndDfs) {
  // Resuming from a *complete* checkpoint restores every pipeline's
  // summary unit and every DFS shard — and still emits the same bytes.
  const std::string dir = resume_dir("full");
  driver::GenOptions opts;
  opts.threads = 4;
  opts.checkpoint_dir = dir;
  const std::vector<std::string> expect =
      generate_signature(nat_gateway_app, opts);

  opts.resume = true;
  ir::Context ctx;
  apps::AppBundle app = nat_gateway_app(ctx);
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  std::vector<sym::TestCaseTemplate> templates = gen.generate();
  EXPECT_TRUE(gen.stats().resumed);
  EXPECT_GT(gen.stats().resumed_pipelines, 0u);
  EXPECT_GT(gen.stats().engine.resumed_shards, 0u);
  EXPECT_GT(gen.stats().checkpoint_writes, 0u);
  EXPECT_EQ(gen.stats().checkpoint_failures, 0u);
  std::vector<std::string> got;
  for (const sym::TestCaseTemplate& t : templates) {
    std::ostringstream os;
    os << sym::describe(t, ctx, gen.graph()) << "\n  path:";
    for (cfg::NodeId n : t.path) os << " " << n;
    got.push_back(os.str());
  }
  EXPECT_EQ(got, expect);
}

TEST(Resume, InjectedShardCrashStillByteIdentical) {
  // Robustness composition: an injected shard crash (re-queued once, heals
  // on the fresh-context retry) in a checkpointing run must not perturb
  // the emitted bytes.
  driver::GenOptions opts;
  opts.threads = 4;
  const std::vector<std::string> expect =
      generate_signature(nat_gateway_app, opts);

  opts.checkpoint_dir = resume_dir("faulted");
  util::FaultInjector inj;
  inj.add(util::parse_fault_spec("shard.1:abort"));
  opts.fault = &inj;
  const std::vector<std::string> got =
      generate_signature(nat_gateway_app, opts);
  EXPECT_EQ(inj.fired(), 1u);
  EXPECT_EQ(got, expect);
}

// ------------------------------------- solver throughput (cache/portfolio)

// The acceptance bar for the solver-throughput layer: the path-condition
// cache and the adaptive portfolio are on by default and must be output-
// transparent — templates byte-identical to a run with both off, at every
// thread count (the shared cache makes hit/miss *counters* scheduling-
// dependent, but never a verdict).
TEST(Determinism, SolverCachePortfolioTransparentAcrossThreadCounts) {
  driver::GenOptions off;
  off.pc_cache = false;
  off.solver_portfolio = false;
  off.threads = 1;
  const std::vector<std::string> base =
      generate_signature(nat_gateway_app, off);
  EXPECT_FALSE(base.empty());
  for (int threads : {1, 2, 8}) {
    driver::GenOptions on;  // pc_cache + solver_portfolio default on
    on.threads = threads;
    const std::vector<std::string> got = generate_signature(nat_gateway_app, on);
    ASSERT_EQ(got.size(), base.size()) << threads << " threads";
    for (size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(got[i], base[i]) << "template " << i << ", " << threads
                                 << " threads";
    }
  }
}

TEST(Determinism, SolverCacheTransparentOnMultiSwitch) {
  driver::GenOptions off;
  off.pc_cache = false;
  off.solver_portfolio = false;
  const std::vector<std::string> base =
      generate_signature(multi_switch_app, off);
  const std::vector<std::string> got =
      generate_signature(multi_switch_app, {});
  EXPECT_FALSE(base.empty());
  ASSERT_EQ(got.size(), base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(got[i], base[i]) << "template " << i;
  }
}

TEST(Determinism, SolverCacheActuallyHits) {
  // Not a vacuous pass: gw-4's shards re-check shared prefix condition
  // sets (a single sequential DFS never repeats a key — the conds stack
  // is unique along the tree — but shard-forced prefixes are re-checked
  // per shard), so a cached run must record hits and strictly fewer
  // backend checks than the cache-off run. gw-2 is too small for this:
  // static pruning decides its prefix checks, leaving all-unique keys.
  ir::Context ctx;
  apps::AppBundle app = multi_switch_app(ctx);
  driver::Generator gen(ctx, app.dp, app.rules, {});
  (void)gen.generate();
  EXPECT_GT(gen.stats().pc_cache_hits, 0u);
  EXPECT_GT(gen.stats().pc_cache_misses, 0u);

  ir::Context ctx_off;
  apps::AppBundle app_off = multi_switch_app(ctx_off);
  driver::GenOptions off;
  off.pc_cache = false;
  off.solver_portfolio = false;
  driver::Generator gen_off(ctx_off, app_off.dp, app_off.rules, off);
  (void)gen_off.generate();
  EXPECT_EQ(gen_off.stats().pc_cache_hits, 0u);
  // Every hit and every model reuse is one backend check the off run paid.
  EXPECT_EQ(gen.stats().engine.solver.checks +
                gen.stats().pc_cache_hits + gen.stats().pc_model_reuse,
            gen_off.stats().engine.solver.checks);
  EXPECT_LT(gen.stats().engine.solver.checks,
            gen_off.stats().engine.solver.checks);
}

TEST(Determinism, SolverCacheAutoDisabledUnderLimitedBudget) {
  // With a limited per-check budget a cached verdict could mask a budget-
  // dependent kUnknown and make the degraded-coverage split scheduling-
  // dependent; the engine must not consult the cache at all.
  ir::Context ctx;
  apps::AppBundle app = nat_gateway_app(ctx);
  driver::GenOptions opts;  // pc_cache defaults on...
  opts.smt_budget.max_conflicts = 1;  // ...but the budget disables it
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  (void)gen.generate();
  EXPECT_EQ(gen.stats().pc_cache_hits, 0u);
  EXPECT_EQ(gen.stats().pc_cache_misses, 0u);
}

// ------------------------------------------------- static pruning (m4lint)

// The dataflow facts may only refute branches the (complete) solver would
// also refute, so the emitted template set must be byte-identical with
// pruning on and off — only the number of solver calls may differ.
void expect_pruning_transparent(const AppMaker& make) {
  driver::GenOptions on;   // static_pruning defaults to true
  driver::GenOptions off;
  off.static_pruning = false;
  const std::vector<std::string> with = generate_signature(make, on);
  const std::vector<std::string> without = generate_signature(make, off);
  EXPECT_FALSE(with.empty());
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i], without[i]) << "template " << i;
  }
}

TEST(StaticPruning, RouterTemplatesUnchanged) {
  expect_pruning_transparent(router_app);
}

TEST(StaticPruning, NatGatewayTemplatesUnchanged) {
  expect_pruning_transparent(nat_gateway_app);
}

TEST(StaticPruning, MultiSwitchTemplatesUnchanged) {
  expect_pruning_transparent(multi_switch_app);
}

driver::GenStats run_generator(const AppMaker& make, bool pruning) {
  ir::Context ctx;
  apps::AppBundle app = make(ctx);
  driver::GenOptions opts;
  opts.static_pruning = pruning;
  driver::Generator gen(ctx, app.dp, app.rules, opts);
  (void)gen.generate();
  return gen.stats();
}

// The acceptance bar for the subsystem: on the Fig. 9 scalability app (the
// router) and the NAT gateway, pruning must actually reduce solver calls.
void expect_fewer_solver_calls(const AppMaker& make) {
  const driver::GenStats on = run_generator(make, true);
  const driver::GenStats off = run_generator(make, false);
  EXPECT_EQ(on.templates, off.templates);
  EXPECT_LT(on.smt_checks, off.smt_checks);
  EXPECT_GT(on.smt_calls_skipped, 0u);
  EXPECT_EQ(off.smt_calls_skipped, 0u);
}

TEST(StaticPruning, ReducesSolverCallsOnRouter) {
  expect_fewer_solver_calls(router_app);
}

TEST(StaticPruning, ReducesSolverCallsOnNatGateway) {
  expect_fewer_solver_calls(nat_gateway_app);
}

// ------------------------------------------------- incremental re-testing

// An incremental update must emit templates byte-identical to a
// from-scratch run of the updated program, for every thread count — the
// reuse machinery (summary-unit replay + shared verdict cache) may only
// change what the run *costs*, never what it produces.
TEST(Incremental, ByteIdenticalAcrossThreadCounts) {
  auto run_session = [](int threads) {
    ir::Context ctx;
    apps::AppBundle app = nat_gateway_app(ctx);
    driver::IncrementalOptions opts;
    opts.gen.threads = threads;
    driver::IncrementalSession session(ctx, app.dp, opts);
    p4::RuleSet rules = app.rules;
    std::vector<std::vector<std::string>> sigs;
    sigs.push_back(session.run(rules).full_sigs);
    // Drop the last installed rule (a tail-of-pipeline table).
    rules.entries.pop_back();
    sigs.push_back(session.run(rules).full_sigs);
    return sigs;
  };
  const auto base = run_session(1);
  EXPECT_FALSE(base[0].empty());
  EXPECT_FALSE(base[1].empty());
  for (int threads : {2, 8}) {
    EXPECT_EQ(run_session(threads), base) << threads << " threads";
  }
}

}  // namespace
}  // namespace meissa
