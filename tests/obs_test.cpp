// Observability layer tests: metric primitives and bucket math, snapshot
// determinism across thread counts, trace span/instant collection, and
// strict round-trips of every JSON shape the repo emits (metrics, traces,
// test reports, lint results) through the testlib parser.
#include <gtest/gtest.h>

#include <thread>

#include "analysis/lint.hpp"
#include "driver/report.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testlib.hpp"
#include "util/error.hpp"

namespace meissa {
namespace {

using testlib::json::Value;

// --- primitives -------------------------------------------------------------

TEST(ObsMetrics, CounterAndGaugeBasics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);

  obs::Gauge g;
  g.set(7);
  EXPECT_EQ(g.value(), 7u);
  g.record_max(3);  // below: no change
  EXPECT_EQ(g.value(), 7u);
  g.record_max(19);
  EXPECT_EQ(g.value(), 19u);
}

TEST(ObsMetrics, HistogramBucketMath) {
  // bucket 0 holds exactly the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(~uint64_t{0}), 64);

  EXPECT_EQ(obs::Histogram::bucket_limit(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_limit(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_limit(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_limit(64), ~uint64_t{0});
  // The two functions agree: a bucket's limit maps back into it, and the
  // next value up maps into the next bucket.
  for (int i = 1; i < 64; ++i) {
    uint64_t limit = obs::Histogram::bucket_limit(i);
    EXPECT_EQ(obs::Histogram::bucket_of(limit), i);
    EXPECT_EQ(obs::Histogram::bucket_of(limit + 1), i + 1);
  }
}

TEST(ObsMetrics, HistogramObserve) {
  obs::Histogram h;
  h.observe(0);
  h.observe(1);
  h.observe(5);
  h.observe(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);  // 5 is in [4, 7]
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(ObsMetrics, RegistryReturnsStableRefsAndChecksKinds) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("x.events");
  obs::Counter& b = reg.counter("x.events");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  // A name keeps its first kind.
  EXPECT_THROW(reg.gauge("x.events"), util::Error);
  EXPECT_THROW(reg.histogram("x.events"), util::Error);
}

// --- snapshot determinism ---------------------------------------------------

// Applies a fixed workload (same totals) to `reg` spread over `threads`
// worker threads, registering names in a thread-dependent order.
void apply_workload(obs::MetricsRegistry& reg, int threads) {
  std::vector<std::thread> pool;
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&reg, t, threads] {
      // Different threads touch the metrics in different orders, so the
      // registration order differs run to run — the snapshot must not.
      for (int i = 0; i < 300; ++i) {
        int k = (i + t) % 3;
        if (k == 0) reg.counter("w.count").add();
        if (k == 1) reg.histogram("w.lat_us").observe(static_cast<uint64_t>(i));
        if (k == 2) reg.gauge("w.depth").record_max(static_cast<uint64_t>(i));
      }
      // Per-thread partition of one more counter: totals independent of
      // the thread count because every i in [0, 900) is hit exactly once.
      for (int i = t; i < 900; i += threads) {
        reg.counter("w.partitioned").add(2);
      }
    });
  }
  for (std::thread& th : pool) th.join();
}

TEST(ObsMetrics, SnapshotDeterministicAcrossThreadCounts) {
  // Note: i%3 rotation means per-thread counts of each metric differ with
  // the thread count, so only compare what is thread-count invariant —
  // here every thread does the same 300-step rotation, so totals scale
  // with `threads`. Normalize by running the SAME thread count twice in
  // different interleavings, plus a cross-thread-count check on the
  // partitioned counter and the name ordering.
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  apply_workload(a, 2);
  apply_workload(b, 2);
  EXPECT_EQ(a.to_json(), b.to_json());

  obs::MetricsRegistry c;
  apply_workload(c, 8);
  // Thread-count-invariant pieces agree between the 2- and 8-thread runs.
  EXPECT_EQ(a.counter("w.partitioned").value(),
            c.counter("w.partitioned").value());
  std::vector<obs::MetricValue> sa = a.snapshot();
  std::vector<obs::MetricValue> sc = c.snapshot();
  ASSERT_EQ(sa.size(), sc.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].name, sc[i].name) << "snapshot order must be by name";
    EXPECT_EQ(sa[i].kind, sc[i].kind);
  }
}

TEST(ObsMetrics, ResetValuesKeepsNamesZeroesValues) {
  obs::MetricsRegistry reg;
  reg.counter("r.a").add(5);
  reg.histogram("r.h").observe(9);
  reg.reset_values();
  std::vector<obs::MetricValue> snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "r.a");
  EXPECT_EQ(snap[0].value, 0u);
  EXPECT_EQ(snap[1].name, "r.h");
  EXPECT_EQ(snap[1].value, 0u);
  EXPECT_EQ(snap[1].sum, 0u);
  EXPECT_TRUE(snap[1].buckets.empty());
}

// --- strict JSON parser -----------------------------------------------------

TEST(ObsJsonParser, ParsesDocument) {
  Value v = testlib::json::parse(
      R"({"s":"a\"b\\c\nd","n":-12.5e1,"t":true,"z":null,"arr":[1,2,{"k":0}]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\nd");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -125.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_EQ(v.at("z").kind, Value::Kind::kNull);
  ASSERT_TRUE(v.at("arr").is_array());
  ASSERT_EQ(v.at("arr").array.size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("arr").array[2].at("k").as_number(), 0.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ObsJsonParser, PreservesKeyOrder) {
  Value v = testlib::json::parse(R"({"z":1,"a":2,"m":3})");
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(ObsJsonParser, RejectsMalformedInput) {
  EXPECT_THROW(testlib::json::parse("{} garbage"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse("[1,2,]"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse(R"({"a":1,})"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse("01"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse("1."), std::runtime_error);
  EXPECT_THROW(testlib::json::parse(R"("bad \q escape")"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse("\"raw \x01 control\""),
               std::runtime_error);
  EXPECT_THROW(testlib::json::parse(R"({"unterminated":"...)"),
               std::runtime_error);
  EXPECT_THROW(testlib::json::parse("tru"), std::runtime_error);
  EXPECT_THROW(testlib::json::parse(""), std::runtime_error);
  EXPECT_THROW(testlib::json::parse("{1:2}"), std::runtime_error);
}

// --- JSON round-trips of the repo's emitters --------------------------------

TEST(ObsRoundTrip, MetricsToJson) {
  obs::MetricsRegistry reg;
  reg.counter("rt.count").add(7);
  reg.gauge("rt.depth").set(3);
  obs::Histogram& h = reg.histogram("rt.lat\"us\\");  // name needing escapes
  h.observe(0);
  h.observe(100);

  Value v = testlib::json::parse(reg.to_json());
  const Value& ms = v.at("metrics");
  ASSERT_TRUE(ms.is_array());
  ASSERT_EQ(ms.array.size(), 3u);
  // Sorted by name: rt.count, rt.depth, rt.lat"us(backslash).
  EXPECT_EQ(ms.array[0].at("name").as_string(), "rt.count");
  EXPECT_EQ(ms.array[0].at("kind").as_string(), "counter");
  EXPECT_DOUBLE_EQ(ms.array[0].at("value").as_number(), 7.0);
  EXPECT_EQ(ms.array[1].at("name").as_string(), "rt.depth");
  EXPECT_EQ(ms.array[1].at("kind").as_string(), "gauge");
  const Value& hist = ms.array[2];
  EXPECT_EQ(hist.at("name").as_string(), "rt.lat\"us\\");
  EXPECT_EQ(hist.at("kind").as_string(), "histogram");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 100.0);
  const Value& buckets = hist.at("buckets");
  ASSERT_EQ(buckets.array.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("le").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(buckets.array[0].at("count").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(buckets.array[1].at("le").as_number(), 127.0);  // 100 in [64,127]
}

TEST(ObsRoundTrip, TraceToJson) {
  obs::trace_start();
  {
    obs::Span span("phase \"one\"", "test");
    span.arg("n", uint64_t{42});
    span.arg("label", std::string("needs \"escaping\"\n\\done"));
  }
  obs::instant("tick", "test");
  obs::trace_stop();

  Value v = testlib::json::parse(obs::trace_to_json());
  EXPECT_EQ(v.at("displayTimeUnit").as_string(), "ms");
  const Value& evs = v.at("traceEvents");
  ASSERT_TRUE(evs.is_array());
  ASSERT_EQ(evs.array.size(), 2u);

  const Value& span = evs.array[0];
  EXPECT_EQ(span.at("name").as_string(), "phase \"one\"");
  EXPECT_EQ(span.at("cat").as_string(), "test");
  EXPECT_EQ(span.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(span.at("pid").as_number(), 1.0);
  EXPECT_GE(span.at("dur").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(span.at("args").at("n").as_number(), 42.0);
  EXPECT_EQ(span.at("args").at("label").as_string(),
            "needs \"escaping\"\n\\done");

  const Value& inst = evs.array[1];
  EXPECT_EQ(inst.at("name").as_string(), "tick");
  EXPECT_EQ(inst.at("ph").as_string(), "i");
  EXPECT_EQ(inst.at("s").as_string(), "t");
  EXPECT_EQ(inst.find("dur"), nullptr);
}

TEST(ObsRoundTrip, DisabledTraceRecordsNothing) {
  obs::trace_start();
  obs::trace_stop();
  {
    obs::Span span("after stop", "test");
    span.arg("n", uint64_t{1});
  }
  obs::instant("after stop");
  EXPECT_TRUE(obs::trace_events().empty());
}

TEST(ObsRoundTrip, TestReportToJson) {
  driver::TestReport r;
  r.templates = 3;
  r.cases = 3;
  r.passed = 2;
  r.failed = 1;
  r.quarantined = {17, 23};
  driver::CaseRecord rec;
  rec.template_id = 2;
  rec.case_id = 9;
  rec.pass = false;
  rec.model_problems = {"port mismatch: got \"3\"\texpected \"1\""};
  rec.intent_problems = {"intent a\\b violated\nsecond line"};
  rec.symbolic_trace = "  assume x == 1  [=> FALSE]\n";
  rec.physical_trace = {"table \"t1\": hit -> set_port(3)"};
  r.failures.push_back(rec);

  Value v = testlib::json::parse(r.to_json());
  EXPECT_DOUBLE_EQ(v.at("templates").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(v.at("failed").as_number(), 1.0);
  ASSERT_EQ(v.at("quarantined").array.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("quarantined").array[1].as_number(), 23.0);
  const Value& f = v.at("failures").array.at(0);
  EXPECT_FALSE(f.at("pass").as_bool());
  EXPECT_EQ(f.at("model_problems").array.at(0).as_string(),
            "port mismatch: got \"3\"\texpected \"1\"");
  EXPECT_EQ(f.at("intent_problems").array.at(0).as_string(),
            "intent a\\b violated\nsecond line");
  EXPECT_EQ(f.at("symbolic_trace").as_string(),
            "  assume x == 1  [=> FALSE]\n");
  EXPECT_EQ(f.at("physical_trace").array.at(0).as_string(),
            "table \"t1\": hit -> set_port(3)");
  // Metrics are folded in only when observability is on.
  EXPECT_EQ(v.find("observability"), nullptr);

  obs::MetricsRegistry::set_enabled(true);
  obs::metrics().counter("rt.report").add(1);
  Value on = testlib::json::parse(r.to_json());
  obs::MetricsRegistry::set_enabled(false);
  obs::metrics().reset_values();
  ASSERT_NE(on.find("observability"), nullptr);
  EXPECT_TRUE(on.at("observability").at("metrics").is_array());
}

TEST(ObsRoundTrip, LintRenderJson) {
  analysis::LintResult res;
  analysis::Diagnostic d;
  d.severity = analysis::Severity::kError;
  d.code = "invalid-header-read";
  d.node = 4;
  d.instance = "ingress\"0\"";
  d.location = "line\t12";
  d.message = "reads \"ipv4.ttl\" while invalid\nbackslash: \\";
  res.diagnostics.push_back(d);
  res.errors = 1;

  Value v = testlib::json::parse(analysis::render_json(res));
  const Value& ds = v.at("diagnostics");
  ASSERT_EQ(ds.array.size(), 1u);
  EXPECT_EQ(ds.array[0].at("code").as_string(), "invalid-header-read");
  EXPECT_EQ(ds.array[0].at("instance").as_string(), "ingress\"0\"");
  EXPECT_EQ(ds.array[0].at("location").as_string(), "line\t12");
  EXPECT_EQ(ds.array[0].at("message").as_string(),
            "reads \"ipv4.ttl\" while invalid\nbackslash: \\");
  EXPECT_DOUBLE_EQ(v.at("errors").as_number(), 1.0);
}

}  // namespace
}  // namespace meissa
