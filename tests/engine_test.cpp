// Tests for the symbolic-execution engine (Algorithm 1): valid-path
// discovery, early termination, template generation, model soundness.
#include <gtest/gtest.h>

#include "sym/template.hpp"
#include "testlib.hpp"

namespace meissa::sym {
namespace {

class Fig7Engine : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig7_plane(ctx);
    rules = testlib::fig7_rules(3);
    g = cfg::build_cfg(dp, rules, ctx);
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  cfg::Cfg g;
};

TEST_F(Fig7Engine, FindsExactlyTheValidPaths) {
  // 3 host paths (emit) + table miss (drop) + non-ip (emit).
  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  EXPECT_EQ(rs.size(), 5u);
  int emits = 0, drops = 0;
  for (const auto& r : rs) {
    emits += r.exit == cfg::ExitKind::kEmit;
    drops += r.exit == cfg::ExitKind::kDrop;
  }
  EXPECT_EQ(emits, 4);
  EXPECT_EQ(drops, 1);
}

TEST_F(Fig7Engine, IntraPipelineRedundancyFoldsMacChecks) {
  // After ipv4_host pins egressPort, the mac_agent predicates are concrete
  // (Fig. 5b/7): they fold without SMT calls.
  Engine eng(ctx, g);
  eng.run([](const PathResult&) {});
  EXPECT_GT(eng.stats().folded_checks, 0u);
}

TEST_F(Fig7Engine, EveryModelDrivesItsOwnPath) {
  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  for (const auto& r : rs) {
    auto model = eng.solve_for_model(r);
    ASSERT_TRUE(model.has_value());
    // Complete the model with defaults for unconstrained inputs.
    ir::ConcreteState s;
    for (auto& [f, v] : *model) s[f] = v;
    for (ir::FieldId f = 0; f < ctx.fields.size(); ++f) s.try_emplace(f, 0);
    auto end = cfg::eval_path(g, r.path, s, ctx);
    EXPECT_TRUE(end.has_value()) << "model did not drive its path";
    // And the concrete interpreter reaches the same terminal.
    auto out = testlib::concrete_run(g, s, ctx);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->terminal, r.path.back());
  }
}

TEST_F(Fig7Engine, EarlyTerminationOffFindsTheSamePaths) {
  EngineOptions lazy;
  lazy.early_termination = false;
  Engine e1(ctx, g);
  Engine e2(ctx, g, lazy);
  std::vector<cfg::Path> p1, p2;
  e1.run([&](const PathResult& r) { p1.push_back(r.path); });
  e2.run([&](const PathResult& r) { p2.push_back(r.path); });
  EXPECT_EQ(p1, p2);
  // In Fig. 7 all infeasibility folds away constant-wise, so early
  // termination cannot visit more nodes (and usually visits fewer).
  EXPECT_LE(e1.stats().nodes_visited, e2.stats().nodes_visited);
}

TEST_F(Fig7Engine, NonIncrementalModeFindsTheSamePaths) {
  EngineOptions fresh;
  fresh.incremental = false;
  Engine e1(ctx, g);
  Engine e2(ctx, g, fresh);
  std::vector<cfg::Path> p1, p2;
  e1.run([&](const PathResult& r) { p1.push_back(r.path); });
  e2.run([&](const PathResult& r) { p2.push_back(r.path); });
  EXPECT_EQ(p1, p2);
}

TEST_F(Fig7Engine, PreconditionRestrictsPaths) {
  // Pin the destination to host 2: only its path plus non-ip remain
  // (non-ip is still compatible since dst constraint says nothing about
  // the ether type).
  Engine eng(ctx, g);
  eng.add_precondition(ctx.arena.cmp(ir::CmpOp::kEq,
                                     ctx.field_var("hdr.ipv4.dst", 32),
                                     ctx.arena.constant(0x0a000002, 32)));
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  EXPECT_EQ(rs.size(), 2u);
}

TEST_F(Fig7Engine, TemplatesCarryEntryAndExitInstances) {
  Engine eng(ctx, g);
  uint64_t id = 0;
  eng.run([&](const PathResult& r) {
    TestCaseTemplate t = make_template(ctx, g, r, id++);
    EXPECT_EQ(t.entry_instance, 0);
    if (t.exit == cfg::ExitKind::kEmit) {
      EXPECT_EQ(t.emit_instance, 0);
    }
    EXPECT_NE(t.path_condition, nullptr);
    EXPECT_FALSE(describe(t, ctx, g).empty());
  });
  EXPECT_EQ(id, 5u);
}

TEST_F(Fig7Engine, MaxResultsAborts) {
  EngineOptions capped;
  capped.max_results = 2;
  Engine eng(ctx, g, capped);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  EXPECT_EQ(rs.size(), 2u);
}

class Fig8Engine : public ::testing::Test {
 protected:
  void SetUp() override {
    dp = testlib::make_fig8_plane(ctx);
    rules = testlib::fig8_rules();
    g = cfg::build_cfg(dp, rules, ctx);
  }
  ir::Context ctx;
  p4::DataPlane dp;
  p4::RuleSet rules;
  cfg::Cfg g;
};

TEST_F(Fig8Engine, EarlyTerminationPrunesSolverInfeasibleBranches) {
  // proto == 6 vs the UDP parse case needs the solver, not just folding:
  // early termination must cut those subtrees.
  EngineOptions lazy;
  lazy.early_termination = false;
  Engine eager(ctx, g);
  Engine lazy_eng(ctx, g, lazy);
  std::vector<cfg::Path> p1, p2;
  eager.run([&](const PathResult& r) { p1.push_back(r.path); });
  lazy_eng.run([&](const PathResult& r) { p2.push_back(r.path); });
  EXPECT_EQ(p1, p2);
  EXPECT_LT(eager.stats().nodes_visited, lazy_eng.stats().nodes_visited);
}

TEST_F(Fig8Engine, MultiPipelineValidPaths) {
  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  // non-ip reject, udp drop, other-proto drop, tcp:443, tcp:other.
  EXPECT_EQ(rs.size(), 5u);
  int through_egress = 0;
  for (const auto& r : rs) {
    if (r.exit == cfg::ExitKind::kEmit) {
      EXPECT_EQ(r.emit_instance, 1);
      ++through_egress;
    }
  }
  EXPECT_EQ(through_egress, 2);
}

TEST_F(Fig8Engine, CrossPipelineInvalidCombinationsArePruned) {
  // Brute-force oracle: of all 238 possible paths, exactly the 5 valid
  // ones admit a satisfying input (checked via fresh solvers).
  auto paths = cfg::enumerate_paths(g, 1000);
  EXPECT_EQ(paths.size(), 238u);
  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  for (const auto& r : rs) {
    auto model = eng.solve_for_model(r);
    ASSERT_TRUE(model.has_value());
    ir::ConcreteState s;
    for (auto& [f, v] : *model) s[f] = v;
    for (ir::FieldId f = 0; f < ctx.fields.size(); ++f) s.try_emplace(f, 0);
    EXPECT_TRUE(cfg::eval_path(g, r.path, s, ctx).has_value());
  }
}

TEST(EngineHash, ConcreteKeysFoldToConstants) {
  // A pipeline that hashes a field pinned by a table match: the engine
  // must compute the hash concretely (paper §4).
  ir::Context ctx;
  cfg::Cfg g;
  ir::FieldId src = ctx.fields.intern("hdr.ipv4.src", 32);
  ir::FieldId h = ctx.fields.intern("meta.hash", 16);
  cfg::NodeId n0 = g.add(ir::Stmt::assume(ctx.arena.cmp(
      ir::CmpOp::kEq, ctx.var(src), ctx.arena.constant(0x01020304, 32))));
  g.set_entry(n0);
  cfg::HashStmt hs;
  hs.dest = h;
  hs.algo = p4::HashAlgo::kCrc16;
  hs.keys = {src};
  cfg::NodeId n1 = g.add_hash(hs);
  g.link(n0, n1);
  cfg::NodeId n2 = g.add(ir::Stmt::nop());
  g.node(n2).exit = cfg::ExitKind::kEmit;
  g.link(n1, n2);

  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  ASSERT_EQ(rs.size(), 1u);
  ir::ExprRef hv = rs[0].values.at(h);
  ASSERT_TRUE(hv->is_const());
  EXPECT_EQ(hv->value,
            p4::compute_hash(p4::HashAlgo::kCrc16, {0x01020304}, {32}, 16));
  EXPECT_TRUE(rs[0].obligations.empty());
}

TEST(EngineHash, SymbolicKeysLeaveObligation) {
  ir::Context ctx;
  cfg::Cfg g;
  ir::FieldId src = ctx.fields.intern("hdr.ipv4.src", 32);
  ir::FieldId h = ctx.fields.intern("meta.hash", 16);
  cfg::HashStmt hs;
  hs.dest = h;
  hs.algo = p4::HashAlgo::kCrc16;
  hs.keys = {src};
  cfg::NodeId n1 = g.add_hash(hs);
  g.set_entry(n1);
  // Branch on the (symbolic) hash result.
  cfg::NodeId br = g.add(ir::Stmt::assume(ctx.arena.cmp(
      ir::CmpOp::kEq, ctx.var(h), ctx.arena.constant(0x1234, 16))));
  g.link(n1, br);
  cfg::NodeId leaf = g.add(ir::Stmt::nop());
  g.node(leaf).exit = cfg::ExitKind::kEmit;
  g.link(br, leaf);

  Engine eng(ctx, g);
  std::vector<PathResult> rs;
  eng.run([&](const PathResult& r) { rs.push_back(r); });
  ASSERT_EQ(rs.size(), 1u);
  ASSERT_EQ(rs[0].obligations.size(), 1u);
  EXPECT_EQ(rs[0].obligations[0].algo, p4::HashAlgo::kCrc16);
  // The path condition mentions the placeholder, not the original dest.
  std::unordered_set<ir::FieldId> fs;
  ir::collect_fields(rs[0].conds[0], fs);
  EXPECT_TRUE(fs.count(rs[0].obligations[0].placeholder));
}

}  // namespace
}  // namespace meissa::sym
