// Static change-impact analysis (analysis/impact): region fingerprints,
// the def-use dependency graph, and the invalidation engine. The suite's
// load-bearing property is interning-order independence — fingerprints
// hash field *names* and region-local discovery indices, never FieldId or
// NodeId, so two contexts that interned the same program differently must
// agree on every hash.
#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "analysis/impact.hpp"
#include "apps/apps.hpp"
#include "cfg/build.hpp"
#include "gtest/gtest.h"

namespace meissa::analysis {
namespace {

apps::AppBundle gateway(ir::Context& ctx, int level = 2) {
  apps::GwConfig cfg;
  cfg.level = level;
  cfg.elastic_ips = 4;
  return apps::make_gateway(ctx, cfg);
}

// Builds the gateway and fingerprints it, optionally pre-interning the
// reference context's field inventory in a shuffled order first, so the
// program's FieldIds (and the expressions hash-consed over them) come out
// permuted relative to the reference build.
struct Build {
  ir::Context ctx;
  apps::AppBundle app;
  cfg::Cfg g;
  ImpactModel model;
};

void make_build(Build& b, const ir::Context* shuffle_from, uint64_t seed) {
  if (shuffle_from != nullptr) {
    std::vector<ir::FieldId> order(shuffle_from->fields.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<ir::FieldId>(i);
    }
    std::mt19937_64 rng(seed);
    std::shuffle(order.begin(), order.end(), rng);
    for (ir::FieldId f : order) {
      b.ctx.fields.intern(shuffle_from->fields.name(f),
                          shuffle_from->fields.width(f));
    }
  }
  b.app = gateway(b.ctx);
  b.g = cfg::build_cfg(b.app.dp, b.app.rules, b.ctx);
  b.model = build_impact_model(b.ctx, b.g, b.app.rules);
}

TEST(Fingerprints, IndependentOfInterningOrder) {
  Build ref;
  make_build(ref, nullptr, 0);
  ASSERT_GT(ref.ctx.fields.size(), 0u);
  for (uint64_t seed : {1u, 7u}) {
    Build sh;
    make_build(sh, &ref.ctx, seed);
    // Sanity: the shuffle actually permuted at least one field id.
    bool permuted = false;
    for (ir::FieldId f = 0; f < ref.ctx.fields.size(); ++f) {
      permuted = permuted || sh.ctx.fields.name(f) != ref.ctx.fields.name(f);
    }
    EXPECT_TRUE(permuted) << "seed " << seed << " left the interner as-is";

    const RegionFingerprints& a = ref.model.fps;
    const RegionFingerprints& b = sh.model.fps;
    EXPECT_EQ(a.instances, b.instances);
    EXPECT_EQ(a.region, b.region);
    EXPECT_EQ(a.region_code, b.region_code);
    EXPECT_EQ(a.table_expansion, b.table_expansion);
    EXPECT_EQ(a.upstream, b.upstream);
    EXPECT_EQ(a.glue, b.glue);
    // `whole` hashes absolute node ids, which the same builder produces
    // identically regardless of interning order.
    EXPECT_EQ(a.whole, b.whole);
    EXPECT_EQ(ref.model.tables, sh.model.tables);
  }
}

TEST(Fingerprints, DepGraphIndependentOfInterningOrder) {
  Build ref, sh;
  make_build(ref, nullptr, 0);
  make_build(sh, &ref.ctx, 3);
  const RegionDeps& a = ref.model.deps;
  const RegionDeps& b = sh.model.deps;
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].name, b.regions[i].name);
    EXPECT_EQ(a.regions[i].reads, b.regions[i].reads);
    EXPECT_EQ(a.regions[i].writes, b.regions[i].writes);
    EXPECT_EQ(a.regions[i].tables, b.regions[i].tables);
    EXPECT_EQ(a.regions[i].entry_reads, b.regions[i].entry_reads);
    EXPECT_EQ(a.regions[i].table_fields, b.regions[i].table_fields);
    EXPECT_EQ(a.regions[i].flow, b.regions[i].flow);
    EXPECT_EQ(a.regions[i].conservative, b.regions[i].conservative);
  }
  EXPECT_EQ(a.edges, b.edges);
  ASSERT_EQ(a.glue.size(), b.glue.size());
  for (size_t i = 0; i < a.glue.size(); ++i) {
    EXPECT_EQ(a.glue[i].reads, b.glue[i].reads);
    EXPECT_EQ(a.glue[i].writes, b.glue[i].writes);
  }
}

TEST(Fingerprints, TableHashIsolatesTheEditedTable) {
  ir::Context ctx;
  apps::AppBundle app = gateway(ctx);
  auto base = fingerprint_tables(app.rules);
  ASSERT_GT(base.count("qos"), 0u);

  p4::RuleSet edited = app.rules;
  for (auto it = edited.entries.rbegin(); it != edited.entries.rend(); ++it) {
    if (it->table == "qos") {
      edited.entries.erase(std::next(it).base());
      break;
    }
  }
  auto after = fingerprint_tables(edited);
  EXPECT_NE(base.at("qos"), after.count("qos") ? after.at("qos") : 0u);
  for (const auto& [table, fp] : base) {
    if (table == "qos") continue;
    ASSERT_GT(after.count(table), 0u) << table;
    EXPECT_EQ(fp, after.at(table)) << table;
  }
}

TEST(Impact, NoChangeLeavesEveryRegionClean) {
  Build a, b;
  make_build(a, nullptr, 0);
  make_build(b, nullptr, 0);
  ImpactDiff d = compute_impact(a.model, b.model);
  EXPECT_FALSE(d.full);
  EXPECT_TRUE(d.dirty.empty());
  EXPECT_TRUE(d.changed_tables.empty());
  EXPECT_EQ(d.clean.size(), a.model.fps.instances.size());
}

TEST(Impact, TableUpdateKeepsUpstreamRegionsClean) {
  ir::Context ctx;
  apps::AppBundle app = gateway(ctx);
  cfg::Cfg g0 = cfg::build_cfg(app.dp, app.rules, ctx);
  ImpactModel base = build_impact_model(ctx, g0, app.rules);

  // Remove the last installed rule — by construction a late-pipeline
  // table, so some upstream region must survive untouched.
  p4::RuleSet edited = app.rules;
  const std::string table = edited.entries.back().table;
  edited.entries.pop_back();
  cfg::Cfg g1 = cfg::build_cfg(app.dp, edited, ctx);
  ImpactModel cur = build_impact_model(ctx, g1, edited);

  ImpactDiff d = compute_impact(base, cur);
  EXPECT_FALSE(d.full);
  EXPECT_EQ(d.changed_tables, std::vector<std::string>{table});
  EXPECT_FALSE(d.dirty.empty());
  EXPECT_FALSE(d.clean.empty()) << "a qos-tail update dirtied everything";
  // The region expanding the table must be in the dirty set.
  bool expander_dirty = false;
  for (const RegionDeps::Region& r : cur.deps.regions) {
    if (std::find(r.tables.begin(), r.tables.end(), table) != r.tables.end()) {
      expander_dirty =
          expander_dirty || std::find(d.dirty.begin(), d.dirty.end(),
                                      r.name) != d.dirty.end();
    }
  }
  EXPECT_TRUE(expander_dirty);
  // Dirty + clean partition the inventory.
  EXPECT_EQ(d.dirty.size() + d.clean.size(), cur.fps.instances.size());
}

TEST(Impact, StructuralChangeInvalidatesEverything) {
  ir::Context ctx;
  apps::AppBundle a2 = gateway(ctx, 2);
  cfg::Cfg g2 = cfg::build_cfg(a2.dp, a2.rules, ctx);
  ImpactModel m2 = build_impact_model(ctx, g2, a2.rules);

  ir::Context ctx3;
  apps::AppBundle a3 = gateway(ctx3, 3);
  cfg::Cfg g3 = cfg::build_cfg(a3.dp, a3.rules, ctx3);
  ImpactModel m3 = build_impact_model(ctx3, g3, a3.rules);

  ImpactDiff d = compute_impact(m2, m3);
  EXPECT_TRUE(d.full);
  EXPECT_TRUE(d.clean.empty());
  EXPECT_EQ(d.dirty.size(), m3.fps.instances.size());
}

}  // namespace
}  // namespace meissa::analysis
