// Unit tests for the expression arena: hash-consing, folding, evaluation,
// and substitution.
#include <gtest/gtest.h>

#include "ir/stmt.hpp"
#include "util/rng.hpp"

namespace meissa::ir {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Context ctx;
};

TEST_F(ExprTest, HashConsingSharesStructurallyEqualNodes) {
  ExprRef a1 = ctx.field_var("hdr.ipv4.ttl", 8);
  ExprRef a2 = ctx.field_var("hdr.ipv4.ttl", 8);
  EXPECT_EQ(a1, a2);
  ExprRef s1 = ctx.arena.arith(ArithOp::kSub, a1, ctx.arena.constant(1, 8));
  ExprRef s2 = ctx.arena.arith(ArithOp::kSub, a2, ctx.arena.constant(1, 8));
  EXPECT_EQ(s1, s2);
}

TEST_F(ExprTest, ConstantFolding) {
  ExprRef c = ctx.arena.arith(ArithOp::kAdd, ctx.arena.constant(250, 8),
                              ctx.arena.constant(10, 8));
  ASSERT_TRUE(c->is_const());
  EXPECT_EQ(c->value, 4u);  // 8-bit wraparound
  ExprRef cmp = ctx.arena.cmp(CmpOp::kLt, ctx.arena.constant(3, 16),
                              ctx.arena.constant(4, 16));
  EXPECT_TRUE(cmp->is_true());
}

TEST_F(ExprTest, IdentitySimplifications) {
  ExprRef x = ctx.field_var("x", 16);
  EXPECT_EQ(ctx.arena.arith(ArithOp::kAdd, x, ctx.arena.constant(0, 16)), x);
  EXPECT_EQ(ctx.arena.arith(ArithOp::kAnd, x, ctx.arena.constant(0xffff, 16)),
            x);
  ExprRef zero = ctx.arena.arith(ArithOp::kAnd, x, ctx.arena.constant(0, 16));
  ASSERT_TRUE(zero->is_const());
  EXPECT_EQ(zero->value, 0u);
  EXPECT_EQ(ctx.arena.arith(ArithOp::kXor, x, x)->value, 0u);
}

TEST_F(ExprTest, CmpAgainstSelfAndExtremes) {
  ExprRef x = ctx.field_var("x", 8);
  EXPECT_TRUE(ctx.arena.cmp(CmpOp::kEq, x, x)->is_true());
  EXPECT_TRUE(ctx.arena.cmp(CmpOp::kLt, x, x)->is_false());
  EXPECT_TRUE(ctx.arena.cmp(CmpOp::kGe, x, ctx.arena.constant(0, 8))->is_true());
  EXPECT_TRUE(
      ctx.arena.cmp(CmpOp::kGt, x, ctx.arena.constant(255, 8))->is_false());
}

TEST_F(ExprTest, BooleanShortCircuitConstruction) {
  ExprRef x = ctx.field_var("x", 8);
  ExprRef p = ctx.arena.cmp(CmpOp::kEq, x, ctx.arena.constant(1, 8));
  EXPECT_EQ(ctx.arena.band(ctx.arena.bool_const(true), p), p);
  EXPECT_TRUE(ctx.arena.band(ctx.arena.bool_const(false), p)->is_false());
  EXPECT_TRUE(ctx.arena.bor(ctx.arena.bool_const(true), p)->is_true());
  EXPECT_EQ(ctx.arena.bor(ctx.arena.bool_const(false), p), p);
  EXPECT_EQ(ctx.arena.band(p, p), p);
}

TEST_F(ExprTest, NegationPushesIntoComparisons) {
  ExprRef x = ctx.field_var("x", 8);
  ExprRef eq = ctx.arena.cmp(CmpOp::kEq, x, ctx.arena.constant(5, 8));
  ExprRef ne = ctx.arena.bnot(eq);
  EXPECT_EQ(ne->kind, ExprKind::kCmp);
  EXPECT_EQ(ne->cmp_op(), CmpOp::kNe);
  EXPECT_EQ(ctx.arena.bnot(ne), eq);
}

TEST_F(ExprTest, EvalComputesModularArithmetic) {
  ExprRef x = ctx.field_var("x", 8);
  ExprRef y = ctx.field_var("y", 8);
  ExprRef e = ctx.arena.arith(ArithOp::kMul, ctx.arena.arith(ArithOp::kAdd, x, y),
                              ctx.arena.constant(3, 8));
  ConcreteState s{{ctx.fields.require("x"), 100}, {ctx.fields.require("y"), 60}};
  // (100 + 60) mod 256 = 160; 160 * 3 mod 256 = 480 mod 256 = 224
  EXPECT_EQ(eval(e, s), std::optional<uint64_t>(224));
}

TEST_F(ExprTest, EvalReturnsNulloptOnUnboundField) {
  ExprRef x = ctx.field_var("x", 8);
  ConcreteState s;
  EXPECT_EQ(eval(x, s), std::nullopt);
  // But short-circuiting can still decide some boolean expressions.
  ExprRef p = ctx.arena.cmp(CmpOp::kEq, x, ctx.arena.constant(1, 8));
  ExprRef decided = ctx.arena.bor(ctx.arena.bool_const(true), p);
  EXPECT_TRUE(decided->is_true());
}

TEST_F(ExprTest, SubstituteRewritesAndSimplifies) {
  ExprRef x = ctx.field_var("x", 8);
  ExprRef y = ctx.field_var("y", 8);
  FieldId fx = ctx.fields.require("x");
  // x + y with x := 7 becomes 7 + y
  ExprRef e = ctx.arena.arith(ArithOp::kAdd, x, y);
  ExprRef r = substitute(e, ctx.arena, [&](FieldId f, int w) -> ExprRef {
    return f == fx ? ctx.arena.constant(7, w) : nullptr;
  });
  // x == x - substitution makes the comparison decidable
  ExprRef p = ctx.arena.cmp(CmpOp::kEq, e, ctx.arena.arith(ArithOp::kAdd, y, ctx.arena.constant(7, 8)));
  ExprRef pr = substitute(p, ctx.arena, [&](FieldId f, int w) -> ExprRef {
    return f == fx ? ctx.arena.constant(7, w) : nullptr;
  });
  EXPECT_TRUE(pr->is_true());
  ConcreteState s{{ctx.fields.require("y"), 9}};
  EXPECT_EQ(eval(r, s), std::optional<uint64_t>(16));
}

TEST_F(ExprTest, MaskedEqBuildsTernaryShape) {
  ExprRef ip = ctx.field_var("hdr.ipv4.dst", 32);
  ExprRef m = ctx.arena.masked_eq(ip, 0xffff0000u, 0x7f010000u);
  ConcreteState s{{ctx.fields.require("hdr.ipv4.dst"), 0x7f01fffeu}};
  EXPECT_EQ(eval(m, s), std::optional<uint64_t>(1));
  s[ctx.fields.require("hdr.ipv4.dst")] = 0x7f02fffeu;
  EXPECT_EQ(eval(m, s), std::optional<uint64_t>(0));
  // Zero mask matches everything.
  EXPECT_TRUE(ctx.arena.masked_eq(ip, 0, 0x1234)->is_true());
}

TEST_F(ExprTest, CollectFieldsFindsAllLeaves) {
  ExprRef x = ctx.field_var("x", 8);
  ExprRef y = ctx.field_var("y", 8);
  ExprRef p = ctx.arena.band(
      ctx.arena.cmp(CmpOp::kLt, x, ctx.arena.constant(9, 8)),
      ctx.arena.cmp(CmpOp::kEq, y, ctx.arena.constant(2, 8)));
  std::unordered_set<FieldId> fs;
  collect_fields(p, fs);
  EXPECT_EQ(fs.size(), 2u);
}

TEST_F(ExprTest, ToStringRendersReadableText) {
  ExprRef x = ctx.field_var("pkt.port", 9);
  ExprRef p = ctx.arena.cmp(CmpOp::kEq, x, ctx.arena.constant(5, 9));
  EXPECT_EQ(to_string(p, ctx.fields), "(pkt.port == 5)");
}

// Property: arena folding agrees with direct evaluation on random exprs.
TEST_F(ExprTest, PropertyFoldingMatchesEvaluation) {
  util::Rng rng(42);
  ExprRef x = ctx.field_var("x", 16);
  ExprRef y = ctx.field_var("y", 16);
  FieldId fx = ctx.fields.require("x");
  FieldId fy = ctx.fields.require("y");
  const ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul,
                         ArithOp::kAnd, ArithOp::kOr,  ArithOp::kXor,
                         ArithOp::kShl, ArithOp::kShr};
  for (int i = 0; i < 500; ++i) {
    // Build a random small expression tree over {x, y, consts}.
    std::vector<ExprRef> leaves = {x, y, ctx.arena.constant(rng.bits(16), 16),
                                   ctx.arena.constant(rng.bits(4), 16)};
    ExprRef a = leaves[rng.below(leaves.size())];
    ExprRef b = leaves[rng.below(leaves.size())];
    ExprRef c = ctx.arena.arith(ops[rng.below(8)], a, b);
    ExprRef d = ctx.arena.arith(ops[rng.below(8)], c,
                                leaves[rng.below(leaves.size())]);
    ConcreteState s{{fx, rng.bits(16)}, {fy, rng.bits(16)}};
    auto direct = [&](ExprRef e, auto&& self) -> uint64_t {
      switch (e->kind) {
        case ExprKind::kConst: return e->value;
        case ExprKind::kField: return util::truncate(s.at(e->field), 16);
        case ExprKind::kArith:
          return apply_arith(e->arith_op(), self(e->lhs, self),
                             self(e->rhs, self), e->width);
        default: ADD_FAILURE(); return 0;
      }
    };
    auto ev = eval(d, s);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, direct(d, direct));
  }
}

}  // namespace
}  // namespace meissa::ir
